//! Property tests for the storage substrate: devices, pools, and record
//! files against in-memory models.

use std::sync::Arc;

use ir2_storage::{BlockDevice, BufferPool, MemDevice, RecordFile, TrackedDevice, BLOCK_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { block: usize, byte: u8 },
    Read { block: usize },
}

fn arb_ops(blocks: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..blocks, any::<u8>()).prop_map(|(block, byte)| Op::Write { block, byte }),
            (0..blocks).prop_map(|block| Op::Read { block }),
        ],
        1..120,
    )
}

proptest! {
    /// A buffer pool of any capacity is observationally equivalent to the
    /// bare device: every read returns the latest write.
    #[test]
    fn buffer_pool_is_transparent(ops in arb_ops(16), capacity in 0usize..20) {
        let blocks = 16u64;
        let pooled = BufferPool::new(MemDevice::with_blocks(blocks), capacity);
        let plain = MemDevice::with_blocks(blocks);
        let mut buf_a = ir2_storage::zeroed_block();
        let mut buf_b = ir2_storage::zeroed_block();
        for op in ops {
            match op {
                Op::Write { block, byte } => {
                    let mut data = ir2_storage::zeroed_block();
                    data.fill(byte);
                    pooled.write_block(block as u64, &data).unwrap();
                    plain.write_block(block as u64, &data).unwrap();
                }
                Op::Read { block } => {
                    pooled.read_block(block as u64, &mut buf_a).unwrap();
                    plain.read_block(block as u64, &mut buf_b).unwrap();
                    prop_assert_eq!(&buf_a[..], &buf_b[..]);
                }
            }
        }
    }

    /// The sharded pool's per-op hit/miss behavior equals N independent
    /// naive LRU lists, one per shard (`block % num_shards`), under
    /// write-through installs.
    #[test]
    fn sharded_pool_matches_naive_lru_model(
        ops in arb_ops(16),
        capacity in 1usize..12,
        shards in 1usize..5,
    ) {
        use std::collections::VecDeque;

        let pool = BufferPool::with_shards(MemDevice::with_blocks(16), capacity, shards);
        let nshards = pool.num_shards() as u64;
        // Per-shard budgets mirror the pool's exact distribution: the first
        // `capacity % nshards` shards take one extra frame.
        let (base, extra) = (
            pool.capacity() / pool.num_shards(),
            pool.capacity() % pool.num_shards(),
        );
        let budget = |shard: usize| base + usize::from(shard < extra);
        let mut models: Vec<VecDeque<u64>> = vec![VecDeque::new(); pool.num_shards()];
        let mut buf = ir2_storage::zeroed_block();

        for op in ops {
            let (block, is_read) = match op {
                Op::Read { block } => (block as u64, true),
                Op::Write { block, .. } => (block as u64, false),
            };
            // Model step: MRU-front list per shard, install on any access.
            let shard = (block % nshards) as usize;
            let model = &mut models[shard];
            let was_resident = match model.iter().position(|&b| b == block) {
                Some(i) => {
                    model.remove(i);
                    true
                }
                None => {
                    if model.len() == budget(shard) {
                        model.pop_back();
                    }
                    false
                }
            };
            model.push_front(block);

            let before = pool.hit_stats();
            match op {
                Op::Write { block, byte } => {
                    let mut data = ir2_storage::zeroed_block();
                    data.fill(byte);
                    pool.write_block(block as u64, &data).unwrap();
                }
                Op::Read { block } => {
                    pool.read_block(block as u64, &mut buf).unwrap();
                }
            }
            let after = pool.hit_stats();
            let expect = match (is_read, was_resident) {
                (false, _) => (0, 0), // writes never count as read hits
                (true, true) => (1, 0),
                (true, false) => (0, 1),
            };
            prop_assert_eq!((after.0 - before.0, after.1 - before.1), expect);
        }
    }

    /// Random/sequential classification: total accesses always equals the
    /// number of operations, and a strictly ascending scan from block 0 is
    /// one random access plus all-sequential.
    #[test]
    fn tracking_accounts_every_access(n in 1u64..50) {
        let dev = TrackedDevice::new(MemDevice::with_blocks(n));
        let mut buf = ir2_storage::zeroed_block();
        for i in 0..n {
            dev.read_block(i, &mut buf).unwrap();
        }
        let s = dev.stats().snapshot();
        prop_assert_eq!(s.total(), n);
        prop_assert_eq!(s.random_reads, 1);
        prop_assert_eq!(s.seq_reads, n - 1);
    }

    /// Record files return exactly what was appended, across arbitrary
    /// record sizes (including multi-block) and interleaved reads.
    #[test]
    fn record_file_model(records in prop::collection::vec(1usize..9000, 1..25)) {
        let rf = RecordFile::create(MemDevice::new());
        let mut model = Vec::new();
        for (i, len) in records.iter().enumerate() {
            let data: Vec<u8> = (0..*len).map(|j| ((i * 31 + j) % 251) as u8).collect();
            let ptr = rf.append(&data).unwrap();
            model.push((ptr, data));
            // Interleave reads of an earlier record.
            let (p, d) = &model[i / 2];
            prop_assert_eq!(&rf.get(*p).unwrap(), d);
        }
        // Full scan agrees with the model.
        let mut scanned = Vec::new();
        rf.scan(|ptr, data| {
            scanned.push((ptr, data.to_vec()));
            Ok(())
        }).unwrap();
        prop_assert_eq!(scanned, model);
    }

    /// Reopening a record file preserves all content and allows appends.
    #[test]
    fn record_file_reopen(lens in prop::collection::vec(1usize..3000, 1..15)) {
        let dev = Arc::new(MemDevice::new());
        let mut model = Vec::new();
        let state = {
            let rf = RecordFile::create(Arc::clone(&dev));
            for (i, len) in lens.iter().enumerate() {
                let data = vec![i as u8; *len];
                model.push((rf.append(&data).unwrap(), data));
            }
            rf.flush().unwrap();
            rf.state()
        };
        let rf = RecordFile::open(Arc::clone(&dev), state.0, state.1).unwrap();
        for (p, d) in &model {
            prop_assert_eq!(&rf.get(*p).unwrap(), d);
        }
        let p = rf.append(b"after reopen").unwrap();
        prop_assert_eq!(rf.get(p).unwrap(), b"after reopen".to_vec());
    }

    /// Extents pad with zeros and round-trip any payload.
    #[test]
    fn extent_roundtrip(len in 1usize..(3 * BLOCK_SIZE), fill in any::<u8>()) {
        let dev = MemDevice::new();
        let data = vec![fill; len];
        let (first, n) = ir2_storage::extent::append_extent(&dev, &data).unwrap();
        prop_assert_eq!(n as usize, len.div_ceil(BLOCK_SIZE));
        let back = ir2_storage::extent::read_extent(&dev, first, n).unwrap();
        prop_assert_eq!(&back[..len], &data[..]);
        prop_assert!(back[len..].iter().all(|&b| b == 0));
    }
}
