//! Multi-threaded stress tests on the sharded [`BufferPool`]: counter
//! integrity (no lost updates), write-through visibility, and the 1:1
//! correspondence between pool misses and device reads, all under real
//! contention from many reader/writer threads.

use std::sync::atomic::{AtomicU64, Ordering};

use ir2_storage::{BlockDevice, BufferPool, MemDevice, TrackedDevice, BLOCK_SIZE};

const BLOCKS: u64 = 64;

/// Deterministic content per block, so any reader can verify any block no
/// matter how writers interleave (writers re-write the same content).
fn content(id: u64) -> Box<[u8; BLOCK_SIZE]> {
    let mut b = ir2_storage::zeroed_block();
    b.fill((id % 251) as u8 ^ 0x5A);
    b
}

fn run_contended(pool_capacity: usize, shards: usize, threads: usize, ops: usize) {
    let tracked = TrackedDevice::new(MemDevice::with_blocks(BLOCKS));
    let device_stats = tracked.stats();
    let pool = BufferPool::with_shards(tracked, pool_capacity, shards);
    for id in 0..BLOCKS {
        pool.write_block(id, &content(id)).unwrap();
    }
    device_stats.reset(); // count only the contended phase below

    let total_reads = AtomicU64::new(0);
    let total_writes = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (pool, total_reads, total_writes) = (&pool, &total_reads, &total_writes);
            s.spawn(move || {
                // Per-thread xorshift stream — no shared RNG lock to
                // accidentally serialize the threads we mean to contend.
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1) | 1;
                let mut buf = ir2_storage::zeroed_block();
                let (mut reads, mut writes) = (0u64, 0u64);
                for _ in 0..ops {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let id = state % BLOCKS;
                    if state & 0xF == 0 {
                        pool.write_block(id, &content(id)).unwrap();
                        writes += 1;
                    } else {
                        pool.read_block(id, &mut buf).unwrap();
                        assert_eq!(
                            &buf[..],
                            &content(id)[..],
                            "read of block {id} returned foreign content"
                        );
                        reads += 1;
                    }
                }
                total_reads.fetch_add(reads, Ordering::Relaxed);
                total_writes.fetch_add(writes, Ordering::Relaxed);
            });
        }
    });

    // No lost updates on the hit counters: every pool-level read is either
    // a hit or a miss, never dropped or double-counted.
    let (hits, misses) = pool.hit_stats();
    assert_eq!(hits + misses, total_reads.load(Ordering::Relaxed));

    let s = device_stats.snapshot();
    // Write-through: every write reached the device.
    assert_eq!(
        s.random_writes + s.seq_writes,
        total_writes.load(Ordering::Relaxed)
    );
    // Each miss triggers exactly one device read; hits never do.
    assert_eq!(s.random_reads + s.seq_reads, misses);

    // Per-shard counters must sum to the aggregate (each access lands on
    // exactly one shard).
    let per_shard: (u64, u64) = (0..pool.num_shards())
        .map(|i| pool.shard_hit_stats(i))
        .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm));
    assert_eq!(per_shard, (hits, misses));
}

#[test]
fn contended_pool_counters_are_exact() {
    // Capacity 16 over 64 blocks: plenty of misses and evictions.
    run_contended(16, 8, 8, 4_000);
}

#[test]
fn contended_pool_single_shard_still_exact() {
    // One shard = one global lock: the degenerate configuration must obey
    // the same invariants (it is the pre-sharding behavior).
    run_contended(4, 1, 8, 2_000);
}

#[test]
fn contended_pool_with_more_threads_than_shards() {
    run_contended(8, 2, 12, 2_000);
}

#[test]
fn contended_pool_full_capacity_all_hits_after_warmup() {
    // Pool holds every block: after the warm-up fill, no read ever misses,
    // even with 8 threads hammering it.
    let tracked = TrackedDevice::new(MemDevice::with_blocks(BLOCKS));
    let device_stats = tracked.stats();
    let pool = BufferPool::with_shards(tracked, BLOCKS as usize, 8);
    for id in 0..BLOCKS {
        pool.write_block(id, &content(id)).unwrap();
    }
    device_stats.reset();

    std::thread::scope(|s| {
        for t in 0..8u64 {
            let pool = &pool;
            s.spawn(move || {
                let mut buf = ir2_storage::zeroed_block();
                for i in 0..1_000u64 {
                    let id = (i * 7 + t * 13) % BLOCKS;
                    pool.read_block(id, &mut buf).unwrap();
                    assert_eq!(buf[0], content(id)[0]);
                }
            });
        }
    });

    let (hits, misses) = pool.hit_stats();
    assert_eq!(misses, 0, "resident working set must never miss");
    assert_eq!(hits, 8 * 1_000);
    assert_eq!(device_stats.snapshot().total(), 0);
}
