//! Extent I/O: reading and writing runs of consecutive blocks.
//!
//! IR²-Tree and MIR²-Tree nodes keep the plain R-Tree's fanout but carry
//! signatures, so a node "typically requires two disk blocks" (or more for
//! long signatures). A node therefore occupies an *extent* — `n` consecutive
//! blocks — and accessing it costs one random block access plus `n − 1`
//! sequential ones. With a [`TrackedDevice`](crate::TrackedDevice)
//! underneath, these helpers produce exactly that accounting because they
//! touch blocks in ascending id order.

use crate::page::{self, PAGE_PAYLOAD};
use crate::{BlockDevice, BlockId, Result, StorageError, BLOCK_SIZE};

/// Number of blocks needed to hold `bytes` bytes (at least 1).
#[inline]
pub fn blocks_for(bytes: usize) -> u32 {
    (bytes.max(1)).div_ceil(BLOCK_SIZE) as u32
}

/// Number of *sealed* blocks needed to hold `bytes` payload bytes — each
/// block only carries [`PAGE_PAYLOAD`] bytes, the rest being the checksum
/// trailer.
#[inline]
pub fn sealed_blocks_for(bytes: usize) -> u32 {
    (bytes.max(1)).div_ceil(PAGE_PAYLOAD) as u32
}

/// Reads and checksum-verifies one sealed block, leaving the trailer in
/// `buf` (callers use `buf[..PAGE_PAYLOAD]`).
pub fn read_sealed_block(
    dev: &impl BlockDevice,
    id: BlockId,
    buf: &mut [u8; BLOCK_SIZE],
) -> Result<()> {
    dev.read_block(id, buf)?;
    page::verify(buf).map_err(|e| StorageError::Corrupt(format!("block {id}: {e}")))
}

/// Reads a sealed extent, verifying every block's checksum, and returns the
/// concatenated payloads (`nblocks * PAGE_PAYLOAD` bytes).
pub fn read_extent_sealed(dev: &impl BlockDevice, first: BlockId, nblocks: u32) -> Result<Vec<u8>> {
    let mut out = vec![0u8; nblocks as usize * PAGE_PAYLOAD];
    read_extent_sealed_into(dev, first, nblocks, &mut out)?;
    Ok(out)
}

/// Reads a sealed extent into a caller-provided payload buffer of at least
/// `nblocks * PAGE_PAYLOAD` bytes.
///
/// # Panics
/// Panics if `buf` is shorter than `nblocks * PAGE_PAYLOAD`.
pub fn read_extent_sealed_into(
    dev: &impl BlockDevice,
    first: BlockId,
    nblocks: u32,
    buf: &mut [u8],
) -> Result<()> {
    assert!(
        buf.len() >= nblocks as usize * PAGE_PAYLOAD,
        "sealed extent buffer too small"
    );
    let mut block = [0u8; BLOCK_SIZE];
    for i in 0..nblocks as usize {
        read_sealed_block(dev, first + i as u64, &mut block)?;
        buf[i * PAGE_PAYLOAD..(i + 1) * PAGE_PAYLOAD].copy_from_slice(&block[..PAGE_PAYLOAD]);
    }
    Ok(())
}

/// Writes `data` over the extent starting at `first` as sealed blocks,
/// zero-padding the last payload and giving every block a checksum trailer.
/// Returns the number of blocks written.
///
/// Returns [`StorageError::Corrupt`] if `data` is empty.
pub fn write_extent_sealed(dev: &impl BlockDevice, first: BlockId, data: &[u8]) -> Result<u32> {
    if data.is_empty() {
        return Err(StorageError::Corrupt("empty extent write".into()));
    }
    let nblocks = sealed_blocks_for(data.len());
    let mut block = [0u8; BLOCK_SIZE];
    for i in 0..nblocks as usize {
        let start = i * PAGE_PAYLOAD;
        let end = ((i + 1) * PAGE_PAYLOAD).min(data.len());
        block[..end - start].copy_from_slice(&data[start..end]);
        block[end - start..PAGE_PAYLOAD].fill(0);
        page::seal(&mut block);
        dev.write_block(first + i as u64, &block)?;
    }
    Ok(nblocks)
}

/// Allocates a sealed extent for `data` and writes it, returning the first
/// block id and the block count.
pub fn append_extent_sealed(dev: &impl BlockDevice, data: &[u8]) -> Result<(BlockId, u32)> {
    let nblocks = sealed_blocks_for(data.len());
    let first = dev.allocate(nblocks as u64)?;
    write_extent_sealed(dev, first, data)?;
    Ok((first, nblocks))
}

/// Reads `nblocks` consecutive blocks starting at `first` into one buffer.
pub fn read_extent(dev: &impl BlockDevice, first: BlockId, nblocks: u32) -> Result<Vec<u8>> {
    let mut out = vec![0u8; nblocks as usize * BLOCK_SIZE];
    read_extent_into(dev, first, nblocks, &mut out)?;
    Ok(out)
}

/// Reads an extent into a caller-provided buffer (avoids allocation on hot
/// paths such as tree traversal).
///
/// # Panics
/// Panics if `buf` is shorter than `nblocks * BLOCK_SIZE`.
pub fn read_extent_into(
    dev: &impl BlockDevice,
    first: BlockId,
    nblocks: u32,
    buf: &mut [u8],
) -> Result<()> {
    assert!(
        buf.len() >= nblocks as usize * BLOCK_SIZE,
        "extent buffer too small"
    );
    for i in 0..nblocks as usize {
        let chunk: &mut [u8; BLOCK_SIZE] = (&mut buf[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE])
            .try_into()
            .expect("exact block slice");
        dev.read_block(first + i as u64, chunk)?;
    }
    Ok(())
}

/// Writes `data` over the extent starting at `first`, zero-padding the last
/// block. Returns the number of blocks written.
///
/// Returns [`StorageError::Corrupt`] if `data` is empty — writing an empty
/// extent is always a logic error in the callers.
pub fn write_extent(dev: &impl BlockDevice, first: BlockId, data: &[u8]) -> Result<u32> {
    if data.is_empty() {
        return Err(StorageError::Corrupt("empty extent write".into()));
    }
    let nblocks = blocks_for(data.len());
    let mut block = [0u8; BLOCK_SIZE];
    for i in 0..nblocks as usize {
        let start = i * BLOCK_SIZE;
        let end = ((i + 1) * BLOCK_SIZE).min(data.len());
        block[..end - start].copy_from_slice(&data[start..end]);
        block[end - start..].fill(0);
        dev.write_block(first + i as u64, &block)?;
    }
    Ok(nblocks)
}

/// Allocates an extent of `nblocks` and writes `data` into it, returning the
/// first block id.
pub fn append_extent(dev: &impl BlockDevice, data: &[u8]) -> Result<(BlockId, u32)> {
    let nblocks = blocks_for(data.len());
    let first = dev.allocate(nblocks as u64)?;
    write_extent(dev, first, data)?;
    Ok((first, nblocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDevice, TrackedDevice};

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(0), 1);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(BLOCK_SIZE), 1);
        assert_eq!(blocks_for(BLOCK_SIZE + 1), 2);
        assert_eq!(blocks_for(3 * BLOCK_SIZE), 3);
    }

    #[test]
    fn extent_roundtrip_with_padding() {
        let dev = MemDevice::new();
        let data: Vec<u8> = (0..(BLOCK_SIZE + 100)).map(|i| (i % 251) as u8).collect();
        let (first, n) = append_extent(&dev, &data).unwrap();
        assert_eq!(n, 2);
        let back = read_extent(&dev, first, n).unwrap();
        assert_eq!(&back[..data.len()], &data[..]);
        assert!(back[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn overwrite_clears_stale_tail() {
        let dev = MemDevice::new();
        let (first, _) = append_extent(&dev, &[0xFFu8; 2000]).unwrap();
        write_extent(&dev, first, &[0x11u8; 100]).unwrap();
        let back = read_extent(&dev, first, 1).unwrap();
        assert!(back[..100].iter().all(|&b| b == 0x11));
        assert!(
            back[100..].iter().all(|&b| b == 0),
            "stale bytes must be zeroed"
        );
    }

    #[test]
    fn empty_write_is_rejected() {
        let dev = MemDevice::new();
        dev.allocate(1).unwrap();
        assert!(write_extent(&dev, 0, &[]).is_err());
    }

    #[test]
    fn sealed_extent_roundtrip() {
        let dev = MemDevice::new();
        let data: Vec<u8> = (0..(PAGE_PAYLOAD + 77)).map(|i| (i % 253) as u8).collect();
        let (first, n) = append_extent_sealed(&dev, &data).unwrap();
        assert_eq!(n, 2);
        let back = read_extent_sealed(&dev, first, n).unwrap();
        assert_eq!(&back[..data.len()], &data[..]);
        assert!(back[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn sealed_read_detects_flipped_byte_in_any_block() {
        let dev = MemDevice::new();
        let data = vec![0xABu8; 2 * PAGE_PAYLOAD];
        let (first, n) = append_extent_sealed(&dev, &data).unwrap();
        for victim in 0..n as u64 {
            let mut raw = crate::zeroed_block();
            dev.read_block(first + victim, &mut raw).unwrap();
            raw[100] ^= 0x01;
            dev.write_block(first + victim, &raw).unwrap();
            assert!(
                matches!(
                    read_extent_sealed(&dev, first, n),
                    Err(StorageError::Corrupt(_))
                ),
                "flip in block {victim} must fail the read"
            );
            raw[100] ^= 0x01; // restore for the next iteration
            dev.write_block(first + victim, &raw).unwrap();
        }
        read_extent_sealed(&dev, first, n).unwrap();
    }

    #[test]
    fn sealed_read_rejects_unsealed_blocks() {
        let dev = MemDevice::new();
        let first = dev.allocate(1).unwrap();
        write_extent(&dev, first, &[1u8; 64]).unwrap(); // plain, no trailer
        assert!(matches!(
            read_extent_sealed(&dev, first, 1),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn extent_read_costs_one_random_plus_sequential() {
        let dev = TrackedDevice::new(MemDevice::new());
        let data = vec![7u8; 3 * BLOCK_SIZE];
        let (first, n) = append_extent(&dev, &data).unwrap();
        dev.stats().reset();

        read_extent(&dev, first, n).unwrap();
        let s = dev.stats().snapshot();
        assert_eq!(s.random_reads, 1, "first block of the extent seeks");
        assert_eq!(s.seq_reads, 2, "remaining blocks stream sequentially");
    }
}
