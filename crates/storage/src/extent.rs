//! Extent I/O: reading and writing runs of consecutive blocks.
//!
//! IR²-Tree and MIR²-Tree nodes keep the plain R-Tree's fanout but carry
//! signatures, so a node "typically requires two disk blocks" (or more for
//! long signatures). A node therefore occupies an *extent* — `n` consecutive
//! blocks — and accessing it costs one random block access plus `n − 1`
//! sequential ones. With a [`TrackedDevice`](crate::TrackedDevice)
//! underneath, these helpers produce exactly that accounting because they
//! touch blocks in ascending id order.

use crate::{BlockDevice, BlockId, Result, StorageError, BLOCK_SIZE};

/// Number of blocks needed to hold `bytes` bytes (at least 1).
#[inline]
pub fn blocks_for(bytes: usize) -> u32 {
    (bytes.max(1)).div_ceil(BLOCK_SIZE) as u32
}

/// Reads `nblocks` consecutive blocks starting at `first` into one buffer.
pub fn read_extent(dev: &impl BlockDevice, first: BlockId, nblocks: u32) -> Result<Vec<u8>> {
    let mut out = vec![0u8; nblocks as usize * BLOCK_SIZE];
    read_extent_into(dev, first, nblocks, &mut out)?;
    Ok(out)
}

/// Reads an extent into a caller-provided buffer (avoids allocation on hot
/// paths such as tree traversal).
///
/// # Panics
/// Panics if `buf` is shorter than `nblocks * BLOCK_SIZE`.
pub fn read_extent_into(
    dev: &impl BlockDevice,
    first: BlockId,
    nblocks: u32,
    buf: &mut [u8],
) -> Result<()> {
    assert!(
        buf.len() >= nblocks as usize * BLOCK_SIZE,
        "extent buffer too small"
    );
    for i in 0..nblocks as usize {
        let chunk: &mut [u8; BLOCK_SIZE] = (&mut buf[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE])
            .try_into()
            .expect("exact block slice");
        dev.read_block(first + i as u64, chunk)?;
    }
    Ok(())
}

/// Writes `data` over the extent starting at `first`, zero-padding the last
/// block. Returns the number of blocks written.
///
/// Returns [`StorageError::Corrupt`] if `data` is empty — writing an empty
/// extent is always a logic error in the callers.
pub fn write_extent(dev: &impl BlockDevice, first: BlockId, data: &[u8]) -> Result<u32> {
    if data.is_empty() {
        return Err(StorageError::Corrupt("empty extent write".into()));
    }
    let nblocks = blocks_for(data.len());
    let mut block = [0u8; BLOCK_SIZE];
    for i in 0..nblocks as usize {
        let start = i * BLOCK_SIZE;
        let end = ((i + 1) * BLOCK_SIZE).min(data.len());
        block[..end - start].copy_from_slice(&data[start..end]);
        block[end - start..].fill(0);
        dev.write_block(first + i as u64, &block)?;
    }
    Ok(nblocks)
}

/// Allocates an extent of `nblocks` and writes `data` into it, returning the
/// first block id.
pub fn append_extent(dev: &impl BlockDevice, data: &[u8]) -> Result<(BlockId, u32)> {
    let nblocks = blocks_for(data.len());
    let first = dev.allocate(nblocks as u64)?;
    write_extent(dev, first, data)?;
    Ok((first, nblocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDevice, TrackedDevice};

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(0), 1);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(BLOCK_SIZE), 1);
        assert_eq!(blocks_for(BLOCK_SIZE + 1), 2);
        assert_eq!(blocks_for(3 * BLOCK_SIZE), 3);
    }

    #[test]
    fn extent_roundtrip_with_padding() {
        let dev = MemDevice::new();
        let data: Vec<u8> = (0..(BLOCK_SIZE + 100)).map(|i| (i % 251) as u8).collect();
        let (first, n) = append_extent(&dev, &data).unwrap();
        assert_eq!(n, 2);
        let back = read_extent(&dev, first, n).unwrap();
        assert_eq!(&back[..data.len()], &data[..]);
        assert!(back[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn overwrite_clears_stale_tail() {
        let dev = MemDevice::new();
        let (first, _) = append_extent(&dev, &[0xFFu8; 2000]).unwrap();
        write_extent(&dev, first, &[0x11u8; 100]).unwrap();
        let back = read_extent(&dev, first, 1).unwrap();
        assert!(back[..100].iter().all(|&b| b == 0x11));
        assert!(
            back[100..].iter().all(|&b| b == 0),
            "stale bytes must be zeroed"
        );
    }

    #[test]
    fn empty_write_is_rejected() {
        let dev = MemDevice::new();
        dev.allocate(1).unwrap();
        assert!(write_extent(&dev, 0, &[]).is_err());
    }

    #[test]
    fn extent_read_costs_one_random_plus_sequential() {
        let dev = TrackedDevice::new(MemDevice::new());
        let data = vec![7u8; 3 * BLOCK_SIZE];
        let (first, n) = append_extent(&dev, &data).unwrap();
        dev.stats().reset();

        read_extent(&dev, first, n).unwrap();
        let s = dev.stats().snapshot();
        assert_eq!(s.random_reads, 1, "first block of the extent seeks");
        assert_eq!(s.seq_reads, 2, "remaining blocks stream sequentially");
    }
}
