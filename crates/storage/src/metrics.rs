//! Runtime metrics: lock-free counters, fixed-bucket histograms, and a
//! registry with snapshot/delta and Prometheus-style text export.
//!
//! The paper's whole evaluation is *counting* — random vs. sequential
//! block accesses, signature false positives, object loads. [`IoStats`]
//! and [`IoScope`](crate::IoScope) already attribute block accesses;
//! [`MetricsRegistry`] generalizes that machinery so any layer (pool,
//! trees, query algorithms, batch engine) can publish named counters and
//! histograms through one export path.
//!
//! # Concurrency
//!
//! The hot path is lock free: [`Counter`] and [`Histogram`] are plain
//! relaxed atomics, and callers hold `Arc` handles obtained once at
//! registration, so recording never takes the registry lock. The registry
//! itself serializes only registration and enumeration (snapshot/export),
//! which are cold. Concurrent engines that want zero *cache-line*
//! contention on the hot path keep per-thread deltas (the
//! [`IoScope`](crate::IoScope) pattern) and fold them into the registry
//! after the concurrent phase with [`MetricsRegistry::add_counter`] /
//! [`Histogram::observe`].
//!
//! # No NaN / inf
//!
//! Every derived quantity (rates, means) goes through [`ratio`], which
//! maps `x/0` to `0.0`, so exported text never contains `NaN` or `inf` —
//! a guarantee the CI smoke test asserts on real output.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::IoSnapshot;

/// `num / den` as `f64`, defined as `0.0` when `den` is zero.
///
/// The single division guard used everywhere a rate or mean is derived
/// from counters (pool hit rates, signature match rates, per-access
/// costs): dividing by an empty denominator is always "no observations",
/// never `NaN`.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds used by [`Histogram::new`]: powers of two from 1 to
/// 2²⁰, a range that covers per-query block/object counts from trivial to
/// pathological with constant relative resolution.
pub const POW2_BUCKETS: usize = 21;

/// A fixed-bucket histogram of `u64` observations (relaxed atomics).
///
/// Buckets are cumulative-style on export (Prometheus `le` semantics) but
/// stored as disjoint counts; the highest bucket is unbounded. `sum` and
/// `count` are tracked exactly, so the mean is exact even though bucket
/// membership is quantized.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bound of bucket `i`; the last bucket is `u64::MAX`.
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Running maximum (exact; relaxed CAS loop).
    max: AtomicU64,
}

impl Histogram {
    /// A histogram with power-of-two bucket bounds `1, 2, 4, …, 2²⁰, ∞`.
    pub fn new() -> Self {
        let bounds: Vec<u64> = (0..POW2_BUCKETS as u32)
            .map(|i| 1u64 << i)
            .chain(std::iter::once(u64::MAX))
            .collect();
        Self::with_bounds(&bounds)
    }

    /// A histogram with explicit inclusive upper bounds (must be strictly
    /// increasing; a final `u64::MAX` bucket is appended if absent).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut bounds = bounds.to_vec();
        if *bounds.last().expect("non-empty") != u64::MAX {
            bounds.push(u64::MAX);
        }
        Self {
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            bounds: bounds.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Point-in-time summary of everything observed so far.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .bounds
                .iter()
                .zip(self.buckets.iter())
                .map(|(&le, c)| (le, c.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`Histogram`]: per-bucket `(upper bound,
/// count)` pairs plus exact count/sum/max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Disjoint bucket counts as `(inclusive upper bound, count)`; the
    /// last bound is `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// Exact mean observation, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        ratio(self.sum, self.count)
    }

    /// The upper bound of the bucket containing quantile `q` (e.g. `0.5`,
    /// `0.9`) — a quantized upper estimate; `0` when empty.
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for &(le, n) in &self.buckets {
            seen += n;
            if seen >= target.max(1) {
                return le.min(self.max);
            }
        }
        self.max
    }

    /// Merges another summary into this one (bucket-wise; bounds must
    /// match, as they do for summaries taken from identically configured
    /// histograms).
    pub fn merge(&mut self, other: &HistogramSummary) {
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
        } else if !other.buckets.is_empty() {
            debug_assert_eq!(self.buckets.len(), other.buckets.len());
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                a.1 += b.1;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// A named value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's current summary.
    Histogram(HistogramSummary),
}

/// A registry of named metrics with snapshot/delta and text export.
///
/// Metric names may carry Prometheus-style labels inline, e.g.
/// `queries_total{alg="ir2"}` — the exporter groups `# TYPE` declarations
/// by base name.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use. The returned
    /// handle records without touching the registry lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Adds `n` to the counter named `name` (registering it on first use).
    /// Convenience for cold paths; hot paths should hold the handle.
    pub fn add_counter(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// The histogram named `name` (power-of-two buckets), registering it
    /// on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Sets the gauge named `name` (registering it on first use). Non-finite
    /// values are clamped to `0.0` — the registry never stores `NaN`/`inf`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let clean = if value.is_finite() { value } else { 0.0 };
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Metric::Gauge(g) => g.store(clean.to_bits(), Ordering::Relaxed),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Publishes an [`IoSnapshot`] delta as four counters
    /// `io_{random,sequential}_{reads,writes}_total` suffixed with
    /// `labels` (e.g. `{dev="ir2"}`) — the bridge from the existing
    /// [`IoStats`](crate::IoStats)/[`IoScope`](crate::IoScope) accounting
    /// into the registry.
    pub fn observe_io(&self, labels: &str, delta: IoSnapshot) {
        for (name, v) in [
            ("io_random_reads_total", delta.random_reads),
            ("io_sequential_reads_total", delta.seq_reads),
            ("io_random_writes_total", delta.random_writes),
            ("io_sequential_writes_total", delta.seq_writes),
        ] {
            if v > 0 {
                self.add_counter(&format!("{name}{labels}"), v);
            }
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        MetricsSnapshot {
            values: m
                .iter()
                .map(|(name, metric)| {
                    let v = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => {
                            MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                        }
                        Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }

    /// Prometheus-style text exposition of every registered metric.
    /// Floating-point values are rendered through a finiteness guard, so
    /// the output never contains `NaN` or `inf`.
    pub fn export_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Name → value, sorted by name.
    pub values: BTreeMap<String, MetricValue>,
}

/// `name{labels}` → `name` (the Prometheus metric family).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Renders an `f64` defensively: non-finite values become `0`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

impl MetricsSnapshot {
    /// The delta `self - earlier` for counters and histograms (gauges keep
    /// their current value; metrics absent from `earlier` keep theirs).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(name, v)| {
                let d = match (v, earlier.values.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        let buckets = now
                            .buckets
                            .iter()
                            .zip(then.buckets.iter().chain(std::iter::repeat(&(0, 0))))
                            .map(|(a, b)| (a.0, a.1.saturating_sub(b.1)))
                            .collect();
                        MetricValue::Histogram(HistogramSummary {
                            count: now.count.saturating_sub(then.count),
                            sum: now.sum.saturating_sub(then.sum),
                            max: now.max,
                            buckets,
                        })
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// The counter named `name`, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Prometheus-style text exposition (see
    /// [`MetricsRegistry::export_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (name, value) in &self.values {
            let family = base_name(name);
            let (type_str, lines) = match value {
                MetricValue::Counter(v) => ("counter", vec![format!("{name} {v}")]),
                MetricValue::Gauge(v) => ("gauge", vec![format!("{name} {}", fmt_f64(*v))]),
                MetricValue::Histogram(h) => {
                    let (stem, labels) = match name.find('{') {
                        Some(i) => {
                            let inner = name[i..].trim_start_matches('{').trim_end_matches('}');
                            (&name[..i], format!("{inner},"))
                        }
                        None => (name.as_str(), String::new()),
                    };
                    let bare = labels.trim_end_matches(',');
                    let suffix = if bare.is_empty() {
                        String::new()
                    } else {
                        format!("{{{bare}}}")
                    };
                    let mut lines = Vec::with_capacity(h.buckets.len() + 2);
                    let mut cum = 0u64;
                    for &(le, n) in &h.buckets {
                        cum += n;
                        let le = if le == u64::MAX {
                            "+Inf".to_owned()
                        } else {
                            le.to_string()
                        };
                        lines.push(format!("{stem}_bucket{{{labels}le=\"{le}\"}} {cum}"));
                    }
                    lines.push(format!("{stem}_sum{suffix} {}", h.sum));
                    lines.push(format!("{stem}_count{suffix} {}", h.count));
                    ("histogram", lines)
                }
            };
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {type_str}\n"));
                last_family = family;
            }
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_guards_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(3, 4), 0.75);
        assert!(ratio(u64::MAX, 1).is_finite());
    }

    #[test]
    fn counters_accumulate_concurrently() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events_total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.counter("events_total").get(), 4000, "same handle");
        assert_eq!(reg.snapshot().counter("events_total"), 4000);
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 9, 1000, 2_000_000] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 2_001_015);
        assert_eq!(s.max, 2_000_000);
        assert!((s.mean() - 2_001_015.0 / 7.0).abs() < 1e-9);
        // Disjoint bucket counts sum to the observation count.
        assert_eq!(s.buckets.iter().map(|b| b.1).sum::<u64>(), 7);
        // Median bucket bound is small; p99 reaches the overflow region.
        assert!(s.quantile_le(0.5) <= 4);
        assert!(s.quantile_le(1.0) >= 1000);
        // Empty histogram summary is all zeros.
        let empty = Histogram::new().summary();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile_le(0.5), 0);
    }

    #[test]
    fn histogram_merge_adds_pointwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(1);
        a.observe(100);
        b.observe(7);
        let mut s = a.summary();
        s.merge(&b.summary());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 108);
        assert_eq!(s.max, 100);
        let mut empty = HistogramSummary::default();
        empty.merge(&s);
        assert_eq!(empty, s);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("io_total");
        let h = reg.histogram("latency");
        c.add(10);
        h.observe(4);
        let before = reg.snapshot();
        c.add(5);
        h.observe(8);
        h.observe(8);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counter("io_total"), 5);
        match delta.values.get("latency") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.count, 2);
                assert_eq!(s.sum, 16);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_export_is_clean() {
        let reg = MetricsRegistry::new();
        reg.counter("queries_total{alg=\"ir2\"}").add(3);
        reg.counter("queries_total{alg=\"mir2\"}").add(4);
        reg.set_gauge("pool_hit_rate", 0.5);
        reg.set_gauge("bad_gauge", f64::NAN); // clamped at ingest
        reg.set_gauge("worse_gauge", f64::INFINITY);
        reg.histogram("query_io{alg=\"ir2\"}").observe(3);
        let text = reg.export_prometheus();
        assert!(text.contains("# TYPE queries_total counter"));
        // One TYPE line per family even with two labeled series.
        assert_eq!(text.matches("# TYPE queries_total").count(), 1);
        assert!(text.contains("queries_total{alg=\"ir2\"} 3"));
        assert!(text.contains("pool_hit_rate 0.5"));
        assert!(text.contains("query_io_bucket{alg=\"ir2\",le=\"+Inf\"} 1"));
        assert!(text.contains("query_io_sum{alg=\"ir2\"} 3"));
        assert!(text.contains("query_io_count{alg=\"ir2\"} 1"));
        for token in ["NaN", "nan", "inf"] {
            assert!(!text.contains(token), "dirty value in:\n{text}");
        }
    }

    #[test]
    fn observe_io_bridges_snapshots() {
        let reg = MetricsRegistry::new();
        let delta = IoSnapshot {
            random_reads: 3,
            seq_reads: 2,
            ..Default::default()
        };
        reg.observe_io("{dev=\"ir2\"}", delta);
        reg.observe_io("{dev=\"ir2\"}", delta);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("io_random_reads_total{dev=\"ir2\"}"), 6);
        assert_eq!(snap.counter("io_sequential_reads_total{dev=\"ir2\"}"), 4);
        // Zero components are not registered at all.
        assert!(!snap
            .values
            .contains_key("io_random_writes_total{dev=\"ir2\"}"));
    }

    #[test]
    fn custom_bounds_partition_correctly() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.observe(10); // first bucket (inclusive)
        h.observe(11); // second
        h.observe(1000); // overflow
        let s = h.summary();
        assert_eq!(s.buckets.len(), 3);
        assert_eq!(s.buckets[0], (10, 1));
        assert_eq!(s.buckets[1], (100, 1));
        assert_eq!(s.buckets[2], (u64::MAX, 1));
    }
}
