//! Sharded LRU buffer pool.
//!
//! The paper measures raw disk accesses with no caching, so the experiment
//! defaults bypass the pool (capacity 0 constructs a pass-through). The
//! buffer-pool ablation (A2 in `DESIGN.md`) layers this pool between the
//! query algorithms and the tracked device to show how quickly a modest
//! cache erodes the baseline algorithms' disadvantage.
//!
//! Policy: least-recently-used eviction per shard, write-through (a write
//! updates the cached copy and the device immediately), implemented with a
//! hash map into a slab of frames linked in an intrusive LRU list — no
//! per-access allocation.
//!
//! # Sharding
//!
//! The frame table is split into N independent shards, each behind its own
//! mutex, selected by `block_id % N`. Concurrent readers touching different
//! blocks therefore take different locks instead of serializing on one —
//! the property the concurrent batch query engine
//! (`SpatialKeywordDb::batch_topk`) relies on. Adjacent block ids land in
//! different shards, so a sequential scan round-robins the locks rather
//! than hammering one.
//!
//! Sharding makes eviction *local*: each shard runs LRU over its own
//! `capacity / N` frames, so the global eviction order can differ from a
//! single LRU list (a hot shard evicts blocks that a colder shard would
//! have kept). Reads remain observationally equivalent to the bare device
//! — property-tested in `tests/props.rs` — and a single-shard pool
//! (`with_shards(.., 1)`) reproduces exact global LRU for tests that need
//! it.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::{BlockDevice, BlockId, Result, BLOCK_SIZE};

const NIL: usize = usize::MAX;

/// Default shard count for [`BufferPool::new`]: enough parallelism for the
/// batch engine's default thread counts without splintering tiny pools.
pub const DEFAULT_POOL_SHARDS: usize = 8;

struct Frame {
    block: BlockId,
    data: Box<[u8; BLOCK_SIZE]>,
    prev: usize,
    next: usize,
}

struct PoolState {
    map: HashMap<BlockId, usize>,
    frames: Vec<Frame>,
    /// Most recently used frame index.
    head: usize,
    /// Least recently used frame index.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl PoolState {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            frames: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.detach(idx);
            self.push_front(idx);
        }
    }

    /// Installs `data` as the cached copy of `block`, evicting this shard's
    /// LRU victim if the shard is full.
    fn install(&mut self, capacity: usize, block: BlockId, data: &[u8; BLOCK_SIZE]) {
        if let Some(&idx) = self.map.get(&block) {
            self.frames[idx].data.copy_from_slice(data);
            self.touch(idx);
            return;
        }
        let idx = if self.frames.len() < capacity {
            self.frames.push(Frame {
                block,
                data: crate::zeroed_block(),
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        } else {
            // Evict the LRU frame and reuse it.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 implies a tail");
            self.detach(victim);
            let old = self.frames[victim].block;
            self.map.remove(&old);
            self.frames[victim].block = block;
            victim
        };
        self.frames[idx].data.copy_from_slice(data);
        self.map.insert(block, idx);
        self.push_front(idx);
    }
}

/// A sharded LRU block cache in front of a [`BlockDevice`].
///
/// Implements `BlockDevice` itself, so it can be dropped transparently into
/// any structure, and is safe to share across query threads: each shard has
/// its own lock, so concurrent accesses to different blocks do not
/// serialize. Capacity is in blocks; capacity 0 disables caching.
pub struct BufferPool<D> {
    inner: D,
    /// Per-shard frame budgets, summing to exactly the requested capacity
    /// (empty when caching is disabled).
    shard_capacities: Box<[usize]>,
    /// Empty when caching is disabled.
    shards: Box<[Mutex<PoolState>]>,
}

impl<D: BlockDevice> BufferPool<D> {
    /// Wraps `inner` with an LRU cache of at least `capacity` blocks split
    /// over [`DEFAULT_POOL_SHARDS`] shards (fewer for tiny capacities).
    pub fn new(inner: D, capacity: usize) -> Self {
        Self::with_shards(inner, capacity, DEFAULT_POOL_SHARDS)
    }

    /// Wraps `inner` with an LRU cache of exactly `capacity` blocks split
    /// over `shards` independent locks.
    ///
    /// `shards` is clamped to `[1, capacity]` so every shard owns at least
    /// one frame. The `capacity` frames are distributed evenly; when it does
    /// not divide exactly, the first `capacity % shards` shards each take
    /// one extra frame, so the budgets sum to exactly `capacity` (neither
    /// rounding some shards down to zero frames nor inflating the pool past
    /// its configured size). One shard gives exact global LRU; more shards
    /// trade strict LRU order for lock independence.
    pub fn with_shards(inner: D, capacity: usize, shards: usize) -> Self {
        let nshards = if capacity == 0 {
            0
        } else {
            shards.clamp(1, capacity)
        };
        let base = capacity.checked_div(nshards).unwrap_or(0);
        let extra = capacity.checked_rem(nshards).unwrap_or(0);
        let shard_capacities: Box<[usize]> = (0..nshards)
            .map(|i| base + usize::from(i < extra))
            .collect();
        Self {
            inner,
            shards: shard_capacities
                .iter()
                .map(|&c| Mutex::new(PoolState::with_capacity(c)))
                .collect(),
            shard_capacities,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Number of independent shards (0 when caching is disabled).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity across shards — exactly the capacity the pool
    /// was constructed with.
    pub fn capacity(&self) -> usize {
        self.shard_capacities.iter().sum()
    }

    #[inline]
    fn shard(&self, block: BlockId) -> usize {
        // Modulo keeps adjacent blocks on different locks (sequential scans
        // round-robin the shards) and is trivially predictable in tests.
        (block % self.shards.len() as u64) as usize
    }

    /// Aggregate `(hits, misses)` observed on reads so far, summed over all
    /// shards.
    pub fn hit_stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), shard| {
            let s = shard.lock();
            (h + s.hits, m + s.misses)
        })
    }

    /// Fraction of reads served from the cache, in `[0.0, 1.0]`.
    ///
    /// Defined as `0.0` when no reads have happened yet (a pool that has
    /// served nothing has no hit rate, not a `NaN` one) — including the
    /// capacity-0 passthrough configuration, which never counts accesses.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.hit_stats();
        crate::metrics::ratio(hits, hits + misses)
    }

    /// `(hits, misses)` of one shard (indexes follow `block % num_shards`).
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn shard_hit_stats(&self, shard: usize) -> (u64, u64) {
        let s = self.shards[shard].lock();
        (s.hits, s.misses)
    }

    /// Drops every cached block (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.frames.clear();
            s.head = NIL;
            s.tail = NIL;
        }
    }
}

impl<D: BlockDevice> BlockDevice for BufferPool<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        if self.shards.is_empty() {
            return self.inner.read_block(id, buf);
        }
        let si = self.shard(id);
        {
            let mut s = self.shards[si].lock();
            if let Some(&idx) = s.map.get(&id) {
                buf.copy_from_slice(&*s.frames[idx].data);
                s.touch(idx);
                s.hits += 1;
                return Ok(());
            }
            s.misses += 1;
        }
        // Miss: fetch outside the lock (other shards — and this one — stay
        // available to concurrent readers), then re-lock around the install
        // with the freshly read data. A concurrent write-through of the
        // same block may interleave; correctness only needs the cache to
        // hold *some* post-write value, which `install` guarantees because
        // the device read completed before the re-lock.
        self.inner.read_block(id, buf)?;
        let mut s = self.shards[si].lock();
        s.install(self.shard_capacities[si], id, buf);
        Ok(())
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        // Write-through: device first (so a device error leaves the cache
        // consistent with disk), then cache.
        self.inner.write_block(id, data)?;
        if self.shards.is_empty() {
            return Ok(());
        }
        let si = self.shard(id);
        let mut s = self.shards[si].lock();
        s.install(self.shard_capacities[si], id, data);
        Ok(())
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDevice, TrackedDevice};

    fn block_of(byte: u8) -> Box<[u8; BLOCK_SIZE]> {
        let mut b = crate::zeroed_block();
        b.fill(byte);
        b
    }

    #[test]
    fn read_hit_skips_the_device() {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let pool = BufferPool::new(tracked, 4);
        pool.allocate(2).unwrap();
        pool.write_block(0, &block_of(0xAA)).unwrap();
        stats.reset();

        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap(); // cached by the write-through
        assert_eq!(buf[0], 0xAA);
        assert_eq!(stats.snapshot().total(), 0, "hit must not touch the device");
        assert_eq!(pool.hit_stats().0, 1);
    }

    #[test]
    fn hit_rate_is_zero_before_any_read() {
        let pool = BufferPool::new(MemDevice::new(), 4);
        assert_eq!(pool.hit_rate(), 0.0, "0 accesses must not yield NaN");

        // Capacity 0 (the paper's uncached configuration) never counts
        // accesses at all; the rate stays a clean 0.0 forever.
        let passthrough = BufferPool::new(MemDevice::new(), 0);
        passthrough.allocate(1).unwrap();
        let mut buf = crate::zeroed_block();
        passthrough.read_block(0, &mut buf).unwrap();
        assert_eq!(passthrough.hit_rate(), 0.0);

        // And once reads happen, the rate is the hits fraction.
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(1)).unwrap();
        pool.read_block(0, &mut buf).unwrap(); // hit (write-through cached)
        pool.clear();
        pool.read_block(0, &mut buf).unwrap(); // miss
        assert_eq!(pool.hit_rate(), 0.5);
        assert!(pool.hit_rate().is_finite());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard: exact global LRU.
        let pool = BufferPool::with_shards(MemDevice::new(), 2, 1);
        pool.allocate(3).unwrap();
        for (id, byte) in [(0u64, 1u8), (1, 2), (2, 3)] {
            pool.write_block(id, &block_of(byte)).unwrap();
        }
        // Capacity 2: blocks 1 and 2 are resident, block 0 was evicted.
        let mut buf = crate::zeroed_block();
        let (h0, m0) = pool.hit_stats();
        pool.read_block(1, &mut buf).unwrap();
        pool.read_block(2, &mut buf).unwrap();
        let (h1, m1) = pool.hit_stats();
        assert_eq!((h1 - h0, m1 - m0), (2, 0));
        pool.read_block(0, &mut buf).unwrap(); // miss
        assert_eq!(buf[0], 1, "evicted block still correct via device");
        assert_eq!(pool.hit_stats().1, m1 + 1);
    }

    #[test]
    fn touch_on_read_protects_from_eviction() {
        // Single shard: exact global LRU.
        let pool = BufferPool::with_shards(MemDevice::new(), 2, 1);
        pool.allocate(3).unwrap();
        pool.write_block(0, &block_of(1)).unwrap();
        pool.write_block(1, &block_of(2)).unwrap();
        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap(); // 0 becomes MRU
        pool.write_block(2, &block_of(3)).unwrap(); // evicts 1, not 0
        let (h0, _) = pool.hit_stats();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(pool.hit_stats().0, h0 + 1, "block 0 must still be cached");
    }

    #[test]
    fn capacity_zero_is_passthrough() {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let pool = BufferPool::new(tracked, 0);
        assert_eq!(pool.num_shards(), 0);
        assert_eq!(pool.capacity(), 0);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(9)).unwrap();
        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(
            stats.snapshot().total(),
            3,
            "every access reaches the device"
        );
    }

    #[test]
    fn write_through_keeps_device_fresh() {
        let mem = std::sync::Arc::new(MemDevice::new());
        let pool = BufferPool::new(std::sync::Arc::clone(&mem), 8);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(0x5C)).unwrap();
        let mut buf = crate::zeroed_block();
        mem.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[17], 0x5C);
    }

    #[test]
    fn failed_write_leaves_cached_copy_unchanged() {
        // Write-through ordering regression: the cache must never get ahead
        // of the disk, so a failed device write must not install the new
        // bytes in a frame.
        use crate::testing::FlakyDevice;
        let mem = std::sync::Arc::new(MemDevice::new());
        let flaky = FlakyDevice::new(std::sync::Arc::clone(&mem), u64::MAX);
        let pool = BufferPool::new(flaky, 4);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(0xAA)).unwrap(); // cached + on disk

        pool.inner().refill(0);
        assert!(pool.write_block(0, &block_of(0xBB)).is_err());

        // The cached copy still holds the last successfully written bytes…
        let (h0, _) = pool.hit_stats();
        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(pool.hit_stats().0, h0 + 1, "read must be a cache hit");
        assert_eq!(buf[0], 0xAA, "cache must not be ahead of the device");
        // …and matches the device exactly.
        mem.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA);
    }

    #[test]
    fn clear_forgets_cached_blocks() {
        let pool = BufferPool::new(MemDevice::new(), 4);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(1)).unwrap();
        pool.clear();
        let mut buf = crate::zeroed_block();
        let (_, m0) = pool.hit_stats();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(pool.hit_stats().1, m0 + 1, "read after clear is a miss");
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn shards_clamp_to_capacity() {
        let pool = BufferPool::with_shards(MemDevice::new(), 3, 16);
        assert_eq!(pool.num_shards(), 3, "no shard may own zero frames");
        assert_eq!(pool.capacity(), 3);
        let pool = BufferPool::new(MemDevice::new(), 64);
        assert_eq!(pool.num_shards(), DEFAULT_POOL_SHARDS);
        assert_eq!(pool.capacity(), 64);
    }

    #[test]
    fn capacity_distributes_the_remainder_exactly() {
        // capacity 9 over 8 shards used to round each shard *up* to 2
        // frames — a pool of 16 where 9 was configured. The remainder must
        // be distributed instead: shard 0 gets the extra frame, the total
        // stays exactly 9.
        let pool = BufferPool::with_shards(MemDevice::new(), 9, 8);
        assert_eq!(pool.num_shards(), 8);
        assert_eq!(pool.capacity(), 9, "pool must hold exactly what was asked");

        // And no shard may round down to zero frames: capacity 3 over 2
        // shards is [2, 1], so shard 1 still caches.
        let pool = BufferPool::with_shards(MemDevice::new(), 3, 2);
        assert_eq!(pool.capacity(), 3);
        pool.allocate(2).unwrap();
        pool.write_block(1, &block_of(5)).unwrap(); // shard 1's only frame
        let mut buf = crate::zeroed_block();
        pool.read_block(1, &mut buf).unwrap();
        assert_eq!(
            pool.shard_hit_stats(1),
            (1, 0),
            "shard 1 must not be a passthrough"
        );

        // Shard 0 holds the extra frame: blocks 0 and 2 both stay resident.
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(1)).unwrap();
        pool.write_block(2, &block_of(2)).unwrap();
        pool.read_block(0, &mut buf).unwrap();
        pool.read_block(2, &mut buf).unwrap();
        assert_eq!(pool.shard_hit_stats(0), (2, 0), "shard 0 owns two frames");
    }

    #[test]
    fn blocks_land_on_their_shard() {
        let pool = BufferPool::with_shards(MemDevice::new(), 8, 4);
        pool.allocate(8).unwrap();
        // Blocks 0 and 4 share shard 0; 1 goes to shard 1.
        pool.write_block(0, &block_of(1)).unwrap();
        pool.write_block(4, &block_of(2)).unwrap();
        pool.write_block(1, &block_of(3)).unwrap();
        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap();
        pool.read_block(4, &mut buf).unwrap();
        pool.read_block(1, &mut buf).unwrap();
        assert_eq!(pool.shard_hit_stats(0), (2, 0));
        assert_eq!(pool.shard_hit_stats(1), (1, 0));
        assert_eq!(pool.shard_hit_stats(2), (0, 0));
        assert_eq!(pool.hit_stats(), (3, 0));
    }

    #[test]
    fn per_shard_lru_is_independent() {
        // 2 shards x 1 frame. Evictions in shard 0 must not disturb
        // shard 1's resident block.
        let pool = BufferPool::with_shards(MemDevice::new(), 2, 2);
        pool.allocate(6).unwrap();
        pool.write_block(1, &block_of(7)).unwrap(); // shard 1
        pool.write_block(0, &block_of(1)).unwrap(); // shard 0
        pool.write_block(2, &block_of(2)).unwrap(); // shard 0, evicts 0
        pool.write_block(4, &block_of(3)).unwrap(); // shard 0, evicts 2
        let mut buf = crate::zeroed_block();
        let (h0, _) = pool.hit_stats();
        pool.read_block(1, &mut buf).unwrap(); // still cached in shard 1
        assert_eq!(pool.hit_stats().0, h0 + 1);
        assert_eq!(buf[0], 7);
        pool.read_block(0, &mut buf).unwrap(); // evicted from shard 0
        assert_eq!(pool.shard_hit_stats(0).1, 1, "block 0 was evicted");
        assert_eq!(buf[0], 1, "device still serves the evicted block");
    }
}
