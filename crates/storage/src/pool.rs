//! LRU buffer pool.
//!
//! The paper measures raw disk accesses with no caching, so the experiment
//! defaults bypass the pool (capacity 0 constructs a pass-through). The
//! buffer-pool ablation (A2 in `DESIGN.md`) layers this pool between the
//! query algorithms and the tracked device to show how quickly a modest
//! cache erodes the baseline algorithms' disadvantage.
//!
//! Policy: least-recently-used eviction, write-through (a write updates the
//! cached copy and the device immediately), implemented with a hash map into
//! a slab of frames linked in an intrusive LRU list — no per-access
//! allocation.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::{BlockDevice, BlockId, Result, BLOCK_SIZE};

const NIL: usize = usize::MAX;

struct Frame {
    block: BlockId,
    data: Box<[u8; BLOCK_SIZE]>,
    prev: usize,
    next: usize,
}

struct PoolState {
    map: HashMap<BlockId, usize>,
    frames: Vec<Frame>,
    /// Most recently used frame index.
    head: usize,
    /// Least recently used frame index.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl PoolState {
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.detach(idx);
            self.push_front(idx);
        }
    }
}

/// An LRU block cache in front of a [`BlockDevice`].
///
/// Implements `BlockDevice` itself, so it can be dropped transparently into
/// any structure. Capacity is in blocks; capacity 0 disables caching.
pub struct BufferPool<D> {
    inner: D,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl<D: BlockDevice> BufferPool<D> {
    /// Wraps `inner` with an LRU cache of `capacity` blocks.
    pub fn new(inner: D, capacity: usize) -> Self {
        Self {
            inner,
            capacity,
            state: Mutex::new(PoolState {
                map: HashMap::with_capacity(capacity),
                frames: Vec::with_capacity(capacity),
                head: NIL,
                tail: NIL,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// `(hits, misses)` observed on reads so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.hits, s.misses)
    }

    /// Drops every cached block (counters are kept).
    pub fn clear(&self) {
        let mut s = self.state.lock();
        s.map.clear();
        s.frames.clear();
        s.head = NIL;
        s.tail = NIL;
    }

    /// Installs `data` as the cached copy of `block`, evicting the LRU
    /// victim if the pool is full.
    fn install(&self, s: &mut PoolState, block: BlockId, data: &[u8; BLOCK_SIZE]) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = s.map.get(&block) {
            s.frames[idx].data.copy_from_slice(data);
            s.touch(idx);
            return;
        }
        let idx = if s.frames.len() < self.capacity {
            s.frames.push(Frame {
                block,
                data: crate::zeroed_block(),
                prev: NIL,
                next: NIL,
            });
            s.frames.len() - 1
        } else {
            // Evict the LRU frame and reuse it.
            let victim = s.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 implies a tail");
            s.detach(victim);
            let old = s.frames[victim].block;
            s.map.remove(&old);
            s.frames[victim].block = block;
            victim
        };
        s.frames[idx].data.copy_from_slice(data);
        s.map.insert(block, idx);
        s.push_front(idx);
    }
}

impl<D: BlockDevice> BlockDevice for BufferPool<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        {
            let mut s = self.state.lock();
            if let Some(&idx) = s.map.get(&id) {
                buf.copy_from_slice(&*s.frames[idx].data);
                s.touch(idx);
                s.hits += 1;
                return Ok(());
            }
            s.misses += 1;
        }
        // Miss: fetch outside the lock would race a concurrent write-through
        // of the same block, so re-lock around the install with the freshly
        // read data. Reads of the device may run concurrently; correctness
        // only needs the cache to hold *some* post-write value.
        self.inner.read_block(id, buf)?;
        let mut s = self.state.lock();
        self.install(&mut s, id, buf);
        Ok(())
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        // Write-through: device first (so a device error leaves the cache
        // consistent with disk), then cache.
        self.inner.write_block(id, data)?;
        let mut s = self.state.lock();
        self.install(&mut s, id, data);
        Ok(())
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDevice, TrackedDevice};

    fn block_of(byte: u8) -> Box<[u8; BLOCK_SIZE]> {
        let mut b = crate::zeroed_block();
        b.fill(byte);
        b
    }

    #[test]
    fn read_hit_skips_the_device() {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let pool = BufferPool::new(tracked, 4);
        pool.allocate(2).unwrap();
        pool.write_block(0, &block_of(0xAA)).unwrap();
        stats.reset();

        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap(); // cached by the write-through
        assert_eq!(buf[0], 0xAA);
        assert_eq!(stats.snapshot().total(), 0, "hit must not touch the device");
        assert_eq!(pool.hit_stats().0, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(MemDevice::new(), 2);
        pool.allocate(3).unwrap();
        for (id, byte) in [(0u64, 1u8), (1, 2), (2, 3)] {
            pool.write_block(id, &block_of(byte)).unwrap();
        }
        // Capacity 2: blocks 1 and 2 are resident, block 0 was evicted.
        let mut buf = crate::zeroed_block();
        let (h0, m0) = pool.hit_stats();
        pool.read_block(1, &mut buf).unwrap();
        pool.read_block(2, &mut buf).unwrap();
        let (h1, m1) = pool.hit_stats();
        assert_eq!((h1 - h0, m1 - m0), (2, 0));
        pool.read_block(0, &mut buf).unwrap(); // miss
        assert_eq!(buf[0], 1, "evicted block still correct via device");
        assert_eq!(pool.hit_stats().1, m1 + 1);
    }

    #[test]
    fn touch_on_read_protects_from_eviction() {
        let pool = BufferPool::new(MemDevice::new(), 2);
        pool.allocate(3).unwrap();
        pool.write_block(0, &block_of(1)).unwrap();
        pool.write_block(1, &block_of(2)).unwrap();
        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap(); // 0 becomes MRU
        pool.write_block(2, &block_of(3)).unwrap(); // evicts 1, not 0
        let (h0, _) = pool.hit_stats();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(pool.hit_stats().0, h0 + 1, "block 0 must still be cached");
    }

    #[test]
    fn capacity_zero_is_passthrough() {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let pool = BufferPool::new(tracked, 0);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(9)).unwrap();
        let mut buf = crate::zeroed_block();
        pool.read_block(0, &mut buf).unwrap();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(stats.snapshot().total(), 3, "every access reaches the device");
    }

    #[test]
    fn write_through_keeps_device_fresh() {
        let mem = std::sync::Arc::new(MemDevice::new());
        let pool = BufferPool::new(std::sync::Arc::clone(&mem), 8);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(0x5C)).unwrap();
        let mut buf = crate::zeroed_block();
        mem.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[17], 0x5C);
    }

    #[test]
    fn clear_forgets_cached_blocks() {
        let pool = BufferPool::new(MemDevice::new(), 4);
        pool.allocate(1).unwrap();
        pool.write_block(0, &block_of(1)).unwrap();
        pool.clear();
        let mut buf = crate::zeroed_block();
        let (_, m0) = pool.hit_stats();
        pool.read_block(0, &mut buf).unwrap();
        assert_eq!(pool.hit_stats().1, m0 + 1, "read after clear is a miss");
        assert_eq!(buf[0], 1);
    }
}
