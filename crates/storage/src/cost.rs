//! Disk cost model: simulated execution time from I/O counts.

use std::time::Duration;

use crate::IoSnapshot;

/// Converts counted block accesses into simulated disk time.
///
/// The paper ran on "an Athlon 64 3400+ … and 74GB 10000RPM drive" — a
/// Western Digital Raptor-class disk. We model it with two parameters:
///
/// * **random access**: average seek (~4.5 ms on a 10 kRPM Raptor) plus
///   average rotational latency (half a revolution at 10 000 RPM = 3 ms)
///   plus the 4 KiB transfer ⇒ ≈ 8 ms;
/// * **sequential access**: a 4 KiB transfer at ~70 MB/s sustained ⇒
///   ≈ 0.06 ms.
///
/// These defaults reproduce the paper's observation that "execution time is
/// primarily proportional to the random access numbers" while keeping the
/// experiments hardware-independent and deterministic. Both parameters are
/// adjustable, e.g. to model an SSD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Time charged per random block access.
    pub random_access: Duration,
    /// Time charged per sequential block access.
    pub sequential_access: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::HDD_10K
    }
}

impl CostModel {
    /// The paper's hardware class: a 10 000 RPM disk, circa 2004.
    pub const HDD_10K: CostModel = CostModel {
        random_access: Duration::from_micros(8000),
        sequential_access: Duration::from_micros(60),
    };

    /// A modern NVMe-class device, for contrast: random and sequential
    /// 4 KiB accesses cost nearly the same.
    pub const SSD: CostModel = CostModel {
        random_access: Duration::from_micros(80),
        sequential_access: Duration::from_micros(15),
    };

    /// Simulated time for the accesses recorded in `io`.
    ///
    /// Computed in u128 nanoseconds: access counts are u64, and both the
    /// old `as u32` truncation and `Duration * u32` overflow panics would
    /// corrupt multi-billion-access runs.
    pub fn time(&self, io: IoSnapshot) -> Duration {
        let nanos = self.random_access.as_nanos() * io.random() as u128
            + self.sequential_access.as_nanos() * io.sequential() as u128;
        let secs = u64::try_from(nanos / 1_000_000_000).unwrap_or(u64::MAX);
        Duration::new(secs, (nanos % 1_000_000_000) as u32)
    }

    /// Simulated time in fractional milliseconds — the unit of the paper's
    /// execution-time figures.
    ///
    /// An empty snapshot costs exactly `0.0` (no division is involved, so
    /// there is no `NaN` path — asserted by a unit test because callers
    /// feed this straight into reports and exported metrics).
    pub fn time_ms(&self, io: IoSnapshot) -> f64 {
        self.time(io).as_secs_f64() * 1e3
    }

    /// Mean simulated milliseconds per access, `0.0` for an empty snapshot.
    ///
    /// The guarded form of `time_ms / total()` used when summarizing
    /// workloads: an empty workload has zero mean cost, never `NaN`.
    pub fn mean_ms_per_access(&self, io: IoSnapshot) -> f64 {
        if io.total() == 0 {
            0.0
        } else {
            self.time_ms(io) / io.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dominates_on_hdd() {
        let io = IoSnapshot {
            random_reads: 10,
            seq_reads: 100,
            ..Default::default()
        };
        let t = CostModel::HDD_10K.time(io);
        // 10 * 8ms = 80ms random, 100 * 0.06ms = 6ms sequential.
        assert_eq!(t, Duration::from_micros(10 * 8000 + 100 * 60));
        assert!(CostModel::HDD_10K.time_ms(io) > 80.0);
    }

    #[test]
    fn empty_snapshot_costs_exactly_zero() {
        let io = IoSnapshot::default();
        for model in [CostModel::HDD_10K, CostModel::SSD] {
            assert_eq!(model.time(io), Duration::ZERO);
            assert_eq!(model.time_ms(io), 0.0);
            assert_eq!(model.mean_ms_per_access(io), 0.0, "no NaN on 0/0");
        }
    }

    #[test]
    fn mean_cost_per_access_is_finite_and_sensible() {
        let io = IoSnapshot {
            random_reads: 2,
            seq_reads: 2,
            ..Default::default()
        };
        let mean = CostModel::HDD_10K.mean_ms_per_access(io);
        // (2*8ms + 2*0.06ms) / 4 = 4.03ms.
        assert!((mean - 4.03).abs() < 1e-9);
        assert!(mean.is_finite());
    }

    #[test]
    fn counts_beyond_u32_neither_truncate_nor_panic() {
        // 5 billion random accesses: `as u32` would truncate to ~0.7 billion
        // and `Duration * u32` could not even represent the count.
        let io = IoSnapshot {
            random_reads: 5_000_000_000,
            seq_reads: u32::MAX as u64 + 17,
            ..Default::default()
        };
        let t = CostModel::HDD_10K.time(io);
        let expected = Duration::from_micros(8000).as_nanos() * 5_000_000_000u128
            + Duration::from_micros(60).as_nanos() * (u32::MAX as u128 + 17);
        assert_eq!(t.as_nanos(), expected);
    }

    #[test]
    fn zero_io_costs_nothing() {
        assert_eq!(
            CostModel::default().time(IoSnapshot::default()),
            Duration::ZERO
        );
    }

    #[test]
    fn ssd_flattens_the_gap() {
        let random_heavy = IoSnapshot {
            random_reads: 100,
            ..Default::default()
        };
        let ratio_hdd = CostModel::HDD_10K.time_ms(random_heavy)
            / CostModel::HDD_10K.random_access.as_secs_f64();
        let _ = ratio_hdd;
        assert!(CostModel::SSD.time(random_heavy) < CostModel::HDD_10K.time(random_heavy));
    }
}
