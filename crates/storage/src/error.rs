//! Storage error type.

use std::fmt;
use std::io;

use crate::BlockId;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Access to a block beyond the allocated end of the device.
    OutOfBounds {
        /// Offending block id.
        block: BlockId,
        /// Number of blocks currently allocated.
        len: u64,
    },
    /// Underlying operating-system I/O failure (file-backed devices only).
    Io(io::Error),
    /// On-disk bytes that do not parse as the expected structure.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfBounds { block, len } => {
                write!(f, "block {block} out of bounds (device has {len} blocks)")
            }
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Result alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;
