//! Storage error type and the transient/permanent taxonomy the retry
//! layer is built on.

use std::fmt;
use std::io;

use crate::BlockId;

/// The device operation an [`StorageError::Io`] was produced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// `read_block`.
    Read,
    /// `write_block`.
    Write,
    /// `allocate`.
    Allocate,
    /// `sync`.
    Sync,
    /// Anything else (file open, metadata, …) or unknown provenance.
    Other,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Read => "read",
            Self::Write => "write",
            Self::Allocate => "allocate",
            Self::Sync => "sync",
            Self::Other => "i/o",
        })
    }
}

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Access to a block beyond the allocated end of the device.
    OutOfBounds {
        /// Offending block id.
        block: BlockId,
        /// Number of blocks currently allocated.
        len: u64,
    },
    /// Underlying operating-system I/O failure, annotated with the device
    /// operation and (when one is in play) the block it targeted.
    Io {
        /// Which device operation failed.
        op: IoOp,
        /// The block the operation targeted, if any (`allocate`/`sync`
        /// have none).
        block: Option<BlockId>,
        /// The OS-level error.
        source: io::Error,
    },
    /// A block the retry layer's circuit breaker has quarantined after
    /// repeated permanent failures; operations on it fail fast.
    Quarantined {
        /// The quarantined block.
        block: BlockId,
        /// Consecutive permanent failures observed before quarantine.
        failures: u32,
    },
    /// On-disk bytes that do not parse as the expected structure.
    Corrupt(String),
}

impl StorageError {
    /// Builds an [`StorageError::Io`] with full context.
    pub fn io(op: IoOp, block: Option<BlockId>, source: io::Error) -> Self {
        Self::Io { op, block, source }
    }

    /// Whether retrying the same operation may plausibly succeed.
    ///
    /// Only OS-level I/O errors whose kind signals a momentary condition
    /// (`Interrupted`, `TimedOut`, `WouldBlock`) are transient. Everything
    /// else — corruption, out-of-bounds access, quarantined blocks, and
    /// hard I/O failures — is permanent: retrying would repeat the same
    /// deterministic outcome.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Io { source, .. } => matches!(
                source.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// Attaches operation/block context to a context-free `Io` error
    /// (one built by the blanket `From<io::Error>`), leaving already
    /// annotated errors and non-I/O errors untouched.
    pub fn with_io_context(self, op: IoOp, block: Option<BlockId>) -> Self {
        match self {
            Self::Io {
                op: IoOp::Other,
                block: None,
                source,
            } => Self::Io { op, block, source },
            other => other,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfBounds { block, len } => {
                write!(f, "block {block} out of bounds (device has {len} blocks)")
            }
            Self::Io {
                op,
                block: Some(b),
                source,
            } => write!(f, "{op} error at block {b}: {source}"),
            Self::Io {
                op,
                block: None,
                source,
            } => write!(f, "{op} error: {source}"),
            Self::Quarantined { block, failures } => write!(
                f,
                "block {block} quarantined after {failures} consecutive permanent failures"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        Self::Io {
            op: IoOp::Other,
            block: None,
            source: e,
        }
    }
}

/// Result alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_io_kind() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            let e = StorageError::io(IoOp::Read, Some(3), io::Error::from(kind));
            assert!(e.is_transient(), "{kind:?} should be transient");
        }
        let hard = StorageError::io(IoOp::Read, Some(3), io::Error::other("dead disk"));
        assert!(!hard.is_transient());
        assert!(!StorageError::Corrupt("x".into()).is_transient());
        assert!(!StorageError::OutOfBounds { block: 0, len: 0 }.is_transient());
        assert!(!StorageError::Quarantined {
            block: 0,
            failures: 3
        }
        .is_transient());
    }

    #[test]
    fn display_carries_op_and_block() {
        let e = StorageError::io(IoOp::Write, Some(42), io::Error::other("boom"));
        let s = e.to_string();
        assert!(s.contains("write"), "{s}");
        assert!(s.contains("42"), "{s}");
    }

    #[test]
    fn context_attaches_only_to_bare_io() {
        let bare: StorageError = io::Error::other("x").into();
        match bare.with_io_context(IoOp::Read, Some(7)) {
            StorageError::Io {
                op: IoOp::Read,
                block: Some(7),
                ..
            } => {}
            other => panic!("context not attached: {other:?}"),
        }
        // Already-annotated errors keep their original context.
        let annotated = StorageError::io(IoOp::Sync, None, io::Error::other("y"));
        match annotated.with_io_context(IoOp::Read, Some(7)) {
            StorageError::Io {
                op: IoOp::Sync,
                block: None,
                ..
            } => {}
            other => panic!("context overwritten: {other:?}"),
        }
    }
}
