//! Block devices: the 4096-byte-block disk abstraction.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::{BlockId, IoOp, Result, StorageError, BLOCK_SIZE};

/// A device of fixed-size (4096-byte) blocks.
///
/// Every index structure in the workspace is stored on a `BlockDevice`, so
/// that each structure's footprint (Table 2 of the paper) and each query's
/// block accesses (Figures 9–14) can be measured independently. All methods
/// take `&self`; implementations are internally synchronized.
pub trait BlockDevice: Send + Sync {
    /// Reads block `id` into `buf`.
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()>;

    /// Writes `data` as the full contents of block `id`.
    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()>;

    /// Extends the device by `n` zeroed blocks, returning the id of the
    /// first new block. The `n` blocks are consecutive.
    fn allocate(&self, n: u64) -> Result<BlockId>;

    /// Number of blocks currently allocated.
    fn num_blocks(&self) -> u64;

    /// Total allocated size in bytes.
    fn size_bytes(&self) -> u64 {
        self.num_blocks() * BLOCK_SIZE as u64
    }

    /// Flushes buffered state to durable storage, where applicable.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Blanket impl so `Arc<D>`, `&D`, `Box<D>` are devices too.
impl<D: BlockDevice + ?Sized, P: std::ops::Deref<Target = D> + Send + Sync> BlockDevice for P {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        (**self).read_block(id, buf)
    }
    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        (**self).write_block(id, data)
    }
    fn allocate(&self, n: u64) -> Result<BlockId> {
        (**self).allocate(n)
    }
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
}

/// Volatile in-memory block device.
///
/// Used by the experiment harness: contents live in RAM while the
/// [`TrackedDevice`](crate::TrackedDevice) wrapper plus
/// [`CostModel`](crate::CostModel) *simulate* the disk the paper measured.
/// This keeps experiments deterministic and independent of the host's
/// actual storage hardware.
#[derive(Default)]
pub struct MemDevice {
    blocks: RwLock<Vec<u8>>,
}

impl MemDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a device with `n` zeroed blocks pre-allocated.
    pub fn with_blocks(n: u64) -> Self {
        Self {
            blocks: RwLock::new(vec![0u8; n as usize * BLOCK_SIZE]),
        }
    }

    #[inline]
    fn check(&self, id: BlockId, len_bytes: usize) -> Result<usize> {
        let off = id as usize * BLOCK_SIZE;
        if off + BLOCK_SIZE > len_bytes {
            return Err(StorageError::OutOfBounds {
                block: id,
                len: (len_bytes / BLOCK_SIZE) as u64,
            });
        }
        Ok(off)
    }
}

impl BlockDevice for MemDevice {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        let blocks = self.blocks.read();
        let off = self.check(id, blocks.len())?;
        buf.copy_from_slice(&blocks[off..off + BLOCK_SIZE]);
        Ok(())
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        let mut blocks = self.blocks.write();
        let off = self.check(id, blocks.len())?;
        blocks[off..off + BLOCK_SIZE].copy_from_slice(data);
        Ok(())
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        let mut blocks = self.blocks.write();
        let first = (blocks.len() / BLOCK_SIZE) as u64;
        let new_len = blocks.len() + n as usize * BLOCK_SIZE;
        blocks.resize(new_len, 0);
        Ok(first)
    }

    fn num_blocks(&self) -> u64 {
        (self.blocks.read().len() / BLOCK_SIZE) as u64
    }
}

/// Durable file-backed block device.
///
/// Block `i` lives at byte offset `i * 4096` of the file. Demonstrates that
/// every structure in the workspace genuinely operates disk-resident; the
/// persistence integration tests build an index on a `FileDevice`, reopen
/// the file, and query it.
pub struct FileDevice {
    file: File,
    len_blocks: AtomicU64,
}

impl FileDevice {
    /// Creates (truncating) a new device file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            len_blocks: AtomicU64::new(0),
        })
    }

    /// Opens an existing device file at `path`.
    ///
    /// Returns [`StorageError::Corrupt`] if the file length is not a
    /// multiple of the block size.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % BLOCK_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "device file length {len} is not a multiple of {BLOCK_SIZE}"
            )));
        }
        Ok(Self {
            file,
            len_blocks: AtomicU64::new(len / BLOCK_SIZE as u64),
        })
    }

    #[inline]
    fn check(&self, id: BlockId) -> Result<u64> {
        let len = self.len_blocks.load(Ordering::Acquire);
        if id >= len {
            return Err(StorageError::OutOfBounds { block: id, len });
        }
        Ok(id * BLOCK_SIZE as u64)
    }
}

impl BlockDevice for FileDevice {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let off = self.check(id)?;
        self.file
            .read_exact_at(buf, off)
            .map_err(|e| StorageError::io(IoOp::Read, Some(id), e))?;
        Ok(())
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let off = self.check(id)?;
        self.file
            .write_all_at(data, off)
            .map_err(|e| StorageError::io(IoOp::Write, Some(id), e))?;
        Ok(())
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        // Serialize allocations through a compare-free critical section:
        // fetch_add reserves the range, set_len grows the file. Concurrent
        // allocations may call set_len out of order; set_len to a smaller
        // value than another thread already set would shrink, so grow to the
        // max we know about.
        let first = self.len_blocks.fetch_add(n, Ordering::AcqRel);
        let new_len = (first + n) * BLOCK_SIZE as u64;
        let alloc_err = |e| StorageError::io(IoOp::Allocate, None, e);
        let cur = self.file.metadata().map_err(alloc_err)?.len();
        if new_len > cur {
            self.file.set_len(new_len).map_err(alloc_err)?;
        }
        Ok(first)
    }

    fn num_blocks(&self) -> u64 {
        self.len_blocks.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io(IoOp::Sync, None, e))?;
        Ok(())
    }
}

/// Copies every block of `src` onto `dst`, extending `dst` as needed, and
/// returns the number of blocks copied. Blocks `dst` already holds are
/// overwritten in place — after the call the first `src.num_blocks()`
/// blocks of the two devices are byte-identical (the replication layer
/// byte-verifies this separately with [`diff_blocks`]).
pub fn copy_blocks<S, D>(src: &S, dst: &D) -> Result<u64>
where
    S: BlockDevice + ?Sized,
    D: BlockDevice + ?Sized,
{
    let n = src.num_blocks();
    if dst.num_blocks() < n {
        dst.allocate(n - dst.num_blocks())?;
    }
    let mut buf = crate::zeroed_block();
    for id in 0..n {
        src.read_block(id, &mut buf)?;
        dst.write_block(id, &buf)?;
    }
    dst.sync()?;
    Ok(n)
}

/// Compares two devices block-for-block and returns the ids of differing
/// blocks. A length mismatch counts every block past the shorter device's
/// end as differing — a truncated replica is corrupt, not merely short.
pub fn diff_blocks<A, B>(a: &A, b: &B) -> Result<Vec<BlockId>>
where
    A: BlockDevice + ?Sized,
    B: BlockDevice + ?Sized,
{
    let (na, nb) = (a.num_blocks(), b.num_blocks());
    let shared = na.min(nb);
    let mut diffs = Vec::new();
    let mut ba = crate::zeroed_block();
    let mut bb = crate::zeroed_block();
    for id in 0..shared {
        a.read_block(id, &mut ba)?;
        b.read_block(id, &mut bb)?;
        if ba != bb {
            diffs.push(id);
        }
    }
    diffs.extend(shared..na.max(nb));
    Ok(diffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &impl BlockDevice) {
        let first = dev.allocate(3).unwrap();
        let mut block = crate::zeroed_block();
        block[0] = 0xAB;
        block[BLOCK_SIZE - 1] = 0xCD;
        dev.write_block(first + 2, &block).unwrap();

        let mut out = crate::zeroed_block();
        dev.read_block(first + 2, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[BLOCK_SIZE - 1], 0xCD);

        // Unwritten blocks read back zeroed.
        dev.read_block(first, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_device_roundtrip() {
        roundtrip(&MemDevice::new());
    }

    #[test]
    fn mem_device_out_of_bounds() {
        let dev = MemDevice::new();
        let mut buf = crate::zeroed_block();
        assert!(matches!(
            dev.read_block(0, &mut buf),
            Err(StorageError::OutOfBounds { .. })
        ));
        dev.allocate(1).unwrap();
        assert!(dev.read_block(0, &mut buf).is_ok());
        assert!(matches!(
            dev.write_block(1, &buf),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn allocation_is_consecutive() {
        let dev = MemDevice::new();
        assert_eq!(dev.allocate(2).unwrap(), 0);
        assert_eq!(dev.allocate(5).unwrap(), 2);
        assert_eq!(dev.allocate(1).unwrap(), 7);
        assert_eq!(dev.num_blocks(), 8);
        assert_eq!(dev.size_bytes(), 8 * BLOCK_SIZE as u64);
    }

    #[test]
    fn file_device_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("ir2-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.blocks");

        {
            let dev = FileDevice::create(&path).unwrap();
            roundtrip(&dev);
            dev.sync().unwrap();
        }
        {
            let dev = FileDevice::open(&path).unwrap();
            assert_eq!(dev.num_blocks(), 3);
            let mut out = crate::zeroed_block();
            dev.read_block(2, &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_device_rejects_misaligned_file() {
        let dir = std::env::temp_dir().join(format!("ir2-storage-mis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.blocks");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(
            FileDevice::open(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arc_is_a_device() {
        let dev = std::sync::Arc::new(MemDevice::new());
        dev.allocate(1).unwrap();
        let mut buf = crate::zeroed_block();
        assert!(dev.read_block(0, &mut buf).is_ok());
    }

    #[test]
    fn copy_and_diff_roundtrip() {
        let src = MemDevice::new();
        src.allocate(3).unwrap();
        for i in 0..3 {
            src.write_block(i, &[i as u8 + 1; BLOCK_SIZE]).unwrap();
        }
        let dst = MemDevice::new();
        assert_eq!(copy_blocks(&src, &dst).unwrap(), 3);
        assert!(diff_blocks(&src, &dst).unwrap().is_empty());

        // A flipped byte and a length mismatch are both reported.
        let mut torn = crate::zeroed_block();
        dst.read_block(1, &mut torn).unwrap();
        torn[77] ^= 0xFF;
        dst.write_block(1, &torn).unwrap();
        dst.allocate(1).unwrap();
        assert_eq!(diff_blocks(&src, &dst).unwrap(), vec![1, 3]);

        // Re-copying repairs the flipped block (the extra block remains —
        // file-level repair handles truncation).
        copy_blocks(&src, &dst).unwrap();
        assert_eq!(diff_blocks(&src, &dst).unwrap(), vec![3]);
    }

    #[test]
    fn copy_into_prefilled_overwrites() {
        let src = MemDevice::new();
        src.allocate(2).unwrap();
        src.write_block(0, &[0x5A; BLOCK_SIZE]).unwrap();
        let dst = MemDevice::new();
        dst.allocate(2).unwrap();
        dst.write_block(0, &[0xA5; BLOCK_SIZE]).unwrap();
        copy_blocks(&src, &dst).unwrap();
        let mut out = crate::zeroed_block();
        dst.read_block(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x5A));
    }
}
