//! Transparent retry layer: jittered exponential backoff for transient
//! faults plus a per-block circuit breaker for persistent ones.
//!
//! Real disks exhibit two failure regimes. *Transient* faults (an
//! interrupted syscall, a momentary timeout) succeed if simply tried
//! again; *permanent* faults (a dead sector, corruption) repeat forever,
//! and retrying them only burns latency. [`RetryDevice`] splits the two
//! with [`StorageError::is_transient`]: transient errors are retried with
//! jittered exponential backoff up to [`RetryPolicy::max_retries`] times,
//! while permanent errors count *strikes* against the block they hit —
//! after [`RetryPolicy::quarantine_after`] consecutive strikes the block
//! is quarantined and every later access fails fast with
//! [`StorageError::Quarantined`], sparing the query path from grinding on
//! a sector that will never answer.
//!
//! Retries and backoff are observable at two granularities: device-wide
//! via the [`MetricsRegistry`] (see [`RetryDevice::with_metrics`]) and
//! per-query via [`RetryScope`], the retry-layer sibling of
//! [`IoScope`](crate::IoScope).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{
    BlockDevice, BlockId, Counter, Histogram, IoOp, MetricsRegistry, Result, StorageError,
    BLOCK_SIZE,
};

/// Tunables for [`RetryDevice`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per operation beyond the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Consecutive *permanent* failures on one block before it is
    /// quarantined. `u32::MAX` disables the breaker.
    pub quarantine_after: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
            quarantine_after: 3,
            seed: 0x5EED_1E57,
        }
    }
}

/// One SplitMix64 output — the jitter stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Registry handles, held so the hot path never takes the registry lock.
struct RetryMetrics {
    attempts: Arc<Counter>,
    recoveries: Arc<Counter>,
    exhausted: Arc<Counter>,
    quarantined: Arc<Counter>,
    rejections: Arc<Counter>,
    backoff_us: Arc<Histogram>,
}

impl RetryMetrics {
    fn register(registry: &MetricsRegistry, label: &str) -> Self {
        let name = |stem: &str| format!("{stem}{{dev=\"{label}\"}}");
        Self {
            attempts: registry.counter(&name("device_retry_attempts_total")),
            recoveries: registry.counter(&name("device_retry_recoveries_total")),
            exhausted: registry.counter(&name("device_retry_exhausted_total")),
            quarantined: registry.counter(&name("device_quarantined_blocks_total")),
            rejections: registry.counter(&name("device_quarantine_rejections_total")),
            backoff_us: registry.histogram(&name("device_retry_backoff_us")),
        }
    }
}

/// Per-block circuit-breaker state.
#[derive(Default)]
struct Breaker {
    /// Consecutive permanent failures per block (cleared on success).
    strikes: HashMap<BlockId, u32>,
    /// Quarantined blocks → strike count at quarantine time.
    quarantined: HashMap<BlockId, u32>,
}

/// A [`BlockDevice`] wrapper that retries transient faults and quarantines
/// persistently failing blocks; see the module docs.
pub struct RetryDevice<D> {
    inner: D,
    policy: RetryPolicy,
    breaker: Mutex<Breaker>,
    jitter: AtomicU64,
    metrics: Option<RetryMetrics>,
}

impl<D: BlockDevice> RetryDevice<D> {
    /// Wraps `inner` with the default [`RetryPolicy`].
    pub fn new(inner: D) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: D, policy: RetryPolicy) -> Self {
        let jitter = AtomicU64::new(policy.seed);
        Self {
            inner,
            policy,
            breaker: Mutex::new(Breaker::default()),
            jitter,
            metrics: None,
        }
    }

    /// Wraps `inner` and publishes retry/backoff/quarantine counters and a
    /// backoff histogram into `registry`, labeled `{dev="<label>"}`.
    pub fn with_metrics(
        inner: D,
        policy: RetryPolicy,
        registry: &MetricsRegistry,
        label: &str,
    ) -> Self {
        let mut dev = Self::with_policy(inner, policy);
        dev.metrics = Some(RetryMetrics::register(registry, label));
        dev
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Blocks currently quarantined by the circuit breaker, sorted.
    pub fn quarantined_blocks(&self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.breaker.lock().quarantined.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Lifts every quarantine and forgets accumulated strikes (e.g. after
    /// an operator replaced the medium).
    pub fn clear_quarantine(&self) {
        let mut b = self.breaker.lock();
        b.strikes.clear();
        b.quarantined.clear();
    }

    /// The backoff before retry number `attempt` (1-based): exponential
    /// growth from the base, capped, with "equal jitter" — half the delay
    /// is fixed, half uniform random — so concurrent retriers against one
    /// busy resource do not stampede in lockstep.
    fn backoff_delay(&self, attempt: u32) -> Duration {
        // `attempt` is 1-based; saturate rather than underflow if a caller
        // ever passes 0. The shift is clamped so `1u32 << shift` cannot
        // overflow, and the exponential product saturates at Duration::MAX.
        let shift = attempt.saturating_sub(1).min(16);
        let exp = self.policy.base_backoff.saturating_mul(1u32 << shift);
        let capped = exp.min(self.policy.max_backoff);
        // A pathological `max_backoff` holds more nanoseconds than u64;
        // saturate instead of silently truncating to an arbitrary sleep.
        let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        let r = splitmix64(self.jitter.fetch_add(1, Ordering::Relaxed));
        Duration::from_nanos(nanos / 2 + r % (nanos / 2 + 1))
    }

    /// Fails fast if `block` is quarantined.
    fn check_quarantine(&self, block: BlockId) -> Result<()> {
        if let Some(&failures) = self.breaker.lock().quarantined.get(&block) {
            if let Some(m) = &self.metrics {
                m.rejections.inc();
            }
            return Err(StorageError::Quarantined { block, failures });
        }
        Ok(())
    }

    /// Records the outcome of a settled (non-retryable) operation on
    /// `block` in the breaker.
    fn settle(&self, block: Option<BlockId>, permanent_failure: bool) {
        let Some(block) = block else { return };
        let mut b = self.breaker.lock();
        if !permanent_failure {
            b.strikes.remove(&block);
            return;
        }
        let strikes = b.strikes.entry(block).or_insert(0);
        *strikes += 1;
        if *strikes >= self.policy.quarantine_after {
            let n = *strikes;
            b.strikes.remove(&block);
            b.quarantined.insert(block, n);
            if let Some(m) = &self.metrics {
                m.quarantined.inc();
            }
        }
    }

    /// Runs `f`, retrying transient failures with backoff and feeding the
    /// breaker on permanent ones.
    fn run<T>(
        &self,
        op: IoOp,
        block: Option<BlockId>,
        mut f: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        if let Some(b) = block {
            self.check_quarantine(b)?;
        }
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(v) => {
                    self.settle(block, false);
                    if attempt > 0 {
                        if let Some(m) = &self.metrics {
                            m.recoveries.inc();
                        }
                    }
                    return Ok(v);
                }
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    let delay = self.backoff_delay(attempt);
                    if let Some(m) = &self.metrics {
                        m.attempts.inc();
                        m.backoff_us.observe(delay.as_micros() as u64);
                    }
                    scope_record(1, delay);
                    std::thread::sleep(delay);
                }
                Err(e) => {
                    if e.is_transient() {
                        // Retries exhausted without recovering.
                        if let Some(m) = &self.metrics {
                            m.exhausted.inc();
                        }
                    } else {
                        self.settle(block, true);
                    }
                    return Err(e.with_io_context(op, block));
                }
            }
        }
    }
}

impl<D: BlockDevice> BlockDevice for RetryDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.run(IoOp::Read, Some(id), || self.inner.read_block(id, buf))
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.run(IoOp::Write, Some(id), || self.inner.write_block(id, data))
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.run(IoOp::Allocate, None, || self.inner.allocate(n))
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.run(IoOp::Sync, None, || self.inner.sync())
    }
}

thread_local! {
    /// Per-thread retry attribution, the sibling of `ACTIVE_SCOPE` in
    /// `tracking.rs`.
    static RETRY_SCOPE: RefCell<Option<RetryStats>> = const { RefCell::new(None) };
}

/// Feeds one retry into the current thread's scope, if any.
#[inline]
fn scope_record(retries: u64, backoff: Duration) {
    RETRY_SCOPE.with(|cell| {
        if let Some(stats) = cell.borrow_mut().as_mut() {
            stats.retries += retries;
            stats.backoff += backoff;
        }
    });
}

/// What one [`RetryScope`] observed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Retry attempts performed by this thread inside the scope.
    pub retries: u64,
    /// Total backoff this thread slept inside the scope.
    pub backoff: Duration,
}

/// Per-thread, per-query retry attribution.
///
/// While a scope is active on a thread, every backoff sleep a
/// [`RetryDevice`] performs *on that thread* is tallied into the scope —
/// the same deterministic-attribution contract as
/// [`IoScope`](crate::IoScope), and the mechanism `QueryReport` uses to
/// report how much of a query's latency was retry stall.
///
/// Scopes do not nest; entering a second scope on the same thread panics.
#[must_use = "a scope that is never finished records nothing useful"]
pub struct RetryScope {
    /// Prevents `Send`: the scope must be finished on the entering thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl RetryScope {
    /// Starts attributing this thread's retries. Panics if a scope is
    /// already active on this thread.
    pub fn enter() -> Self {
        RETRY_SCOPE.with(|cell| {
            let mut slot = cell.borrow_mut();
            assert!(slot.is_none(), "RetryScope does not nest");
            *slot = Some(RetryStats::default());
        });
        Self {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Ends the scope and returns everything it observed.
    pub fn finish(self) -> RetryStats {
        let stats = RETRY_SCOPE.with(|cell| cell.borrow_mut().take());
        std::mem::forget(self); // Drop would otherwise clear an already-taken slot.
        stats.expect("scope state present until finish")
    }
}

impl Drop for RetryScope {
    fn drop(&mut self) {
        RETRY_SCOPE.with(|cell| cell.borrow_mut().take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::FlakyDevice;
    use crate::MemDevice;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn clean_path_is_transparent() {
        let dev = RetryDevice::with_policy(MemDevice::new(), fast_policy());
        let first = dev.allocate(2).unwrap();
        let mut block = crate::zeroed_block();
        block[0] = 0x42;
        dev.write_block(first, &block).unwrap();
        let mut out = crate::zeroed_block();
        dev.read_block(first, &mut out).unwrap();
        assert_eq!(out[0], 0x42);
        assert!(dev.quarantined_blocks().is_empty());
    }

    #[test]
    fn transient_faults_are_absorbed() {
        // Every 2nd op fails transiently; one retry always recovers.
        let flaky = FlakyDevice::every_kth(MemDevice::new(), 2);
        let dev = RetryDevice::with_policy(flaky, fast_policy());
        dev.allocate(4).unwrap();
        let buf = crate::zeroed_block();
        let scope = RetryScope::enter();
        for i in 0..4 {
            dev.write_block(i, &buf).unwrap();
        }
        let mut out = crate::zeroed_block();
        for i in 0..4 {
            dev.read_block(i, &mut out).unwrap();
        }
        let stats = scope.finish();
        assert!(dev.inner().faults_injected() > 0);
        assert!(stats.retries > 0, "retries must be attributed to the scope");
        assert!(stats.backoff > Duration::ZERO);
        assert!(
            dev.quarantined_blocks().is_empty(),
            "transients never quarantine"
        );
    }

    #[test]
    fn transient_exhaustion_surfaces_the_error() {
        // p = 1.0: every attempt fails transiently; retries run out.
        let flaky = FlakyDevice::with_probability(MemDevice::new(), 1.0, 7);
        let dev = RetryDevice::with_policy(flaky, fast_policy());
        let err = dev.allocate(1).unwrap_err();
        assert!(err.is_transient());
        // Initial attempt + max_retries.
        assert_eq!(
            dev.inner().faults_injected(),
            1 + fast_policy().max_retries as u64
        );
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let flaky = FlakyDevice::new(MemDevice::new(), 0); // fails everything, permanently
        let dev = RetryDevice::with_policy(flaky, fast_policy());
        let mut out = crate::zeroed_block();
        assert!(dev.read_block(0, &mut out).is_err());
        assert_eq!(dev.inner().faults_injected(), 1, "exactly one attempt");
    }

    #[test]
    fn breaker_quarantines_after_consecutive_permanent_failures() {
        let policy = RetryPolicy {
            quarantine_after: 3,
            ..fast_policy()
        };
        let flaky = FlakyDevice::new(MemDevice::new(), 0);
        let dev = RetryDevice::with_policy(flaky, policy);
        let mut out = crate::zeroed_block();
        for _ in 0..3 {
            assert!(matches!(
                dev.read_block(5, &mut out),
                Err(StorageError::Io { .. })
            ));
        }
        assert_eq!(dev.quarantined_blocks(), vec![5]);
        // Even after the device heals, the quarantined block fails fast
        // without touching the inner device.
        dev.inner().refill(100);
        let before = dev.inner().faults_injected();
        match dev.read_block(5, &mut out) {
            Err(StorageError::Quarantined {
                block: 5,
                failures: 3,
            }) => {}
            other => panic!("expected fail-fast quarantine, got {other:?}"),
        }
        assert_eq!(dev.inner().faults_injected(), before);
        // Other blocks are unaffected...
        dev.allocate(8).unwrap();
        assert!(dev.read_block(0, &mut out).is_ok());
        // ...and lifting the quarantine restores service.
        dev.clear_quarantine();
        assert!(dev.read_block(5, &mut out).is_ok());
    }

    #[test]
    fn success_resets_the_strike_count() {
        let policy = RetryPolicy {
            quarantine_after: 2,
            ..fast_policy()
        };
        let flaky = FlakyDevice::new(MemDevice::new(), 0);
        let dev = RetryDevice::with_policy(flaky, policy);
        let mut out = crate::zeroed_block();
        assert!(dev.read_block(3, &mut out).is_err()); // strike 1
        dev.inner().refill(10);
        dev.allocate(8).unwrap();
        assert!(dev.read_block(3, &mut out).is_ok()); // strikes cleared
        dev.inner().refill(0);
        assert!(dev.read_block(3, &mut out).is_err()); // strike 1 again
        assert!(dev.quarantined_blocks().is_empty());
    }

    #[test]
    fn metrics_are_published() {
        let registry = MetricsRegistry::new();
        let flaky = FlakyDevice::every_kth(MemDevice::new(), 2);
        let dev = RetryDevice::with_metrics(flaky, fast_policy(), &registry, "objects");
        dev.allocate(2).unwrap();
        let buf = crate::zeroed_block();
        for i in 0..2 {
            dev.write_block(i, &buf).unwrap();
        }
        let snap = registry.snapshot();
        let attempts = snap.counter("device_retry_attempts_total{dev=\"objects\"}");
        let recoveries = snap.counter("device_retry_recoveries_total{dev=\"objects\"}");
        assert!(attempts > 0);
        assert!(recoveries > 0);
        assert!(registry
            .export_prometheus()
            .contains("device_retry_backoff_us_count{dev=\"objects\"}"));
    }

    #[test]
    fn backoff_grows_and_stays_capped() {
        let dev = RetryDevice::with_policy(
            MemDevice::new(),
            RetryPolicy {
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_micros(800),
                ..RetryPolicy::default()
            },
        );
        for attempt in 1..=10 {
            let d = dev.backoff_delay(attempt);
            let cap = Duration::from_micros(800);
            assert!(d <= cap, "attempt {attempt}: {d:?} > cap");
            // Equal jitter keeps at least half the nominal delay.
            let nominal = Duration::from_micros(100 * (1 << (attempt - 1).min(16)).min(8));
            assert!(
                d >= nominal / 2,
                "attempt {attempt}: {d:?} < half of {nominal:?}"
            );
        }
    }

    #[test]
    fn backoff_saturates_at_extreme_attempt_counts() {
        let dev = RetryDevice::with_policy(
            MemDevice::new(),
            RetryPolicy {
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_micros(800),
                ..RetryPolicy::default()
            },
        );
        // Attempt counts past the shift clamp must neither overflow the
        // shift nor escape the cap, and the equal-jitter floor holds.
        for attempt in [17u32, 21, 64, 1 << 20, u32::MAX] {
            let d = dev.backoff_delay(attempt);
            assert!(d <= Duration::from_micros(800), "attempt {attempt}: {d:?}");
            assert!(d >= Duration::from_micros(400), "attempt {attempt}: {d:?}");
        }
        // Attempt 0 is out of contract (retries are 1-based) but must not
        // underflow-panic in debug builds; it degrades to the base delay.
        let d = dev.backoff_delay(0);
        assert!(d <= Duration::from_micros(100));
    }

    #[test]
    fn backoff_survives_pathological_policies() {
        // A cap holding more nanoseconds than u64 used to truncate
        // u128→u64, yielding an arbitrary (possibly near-zero) sleep. The
        // conversion now saturates, so equal jitter keeps the delay at or
        // above half the saturated cap.
        let dev = RetryDevice::with_policy(
            MemDevice::new(),
            RetryPolicy {
                base_backoff: Duration::MAX,
                max_backoff: Duration::MAX,
                ..RetryPolicy::default()
            },
        );
        for attempt in [1u32, 2, 40, u32::MAX] {
            let d = dev.backoff_delay(attempt);
            assert!(
                d >= Duration::from_nanos(u64::MAX / 2),
                "attempt {attempt}: {d:?} lost nanoseconds to truncation"
            );
        }
    }

    #[test]
    fn dropped_scope_deactivates() {
        {
            let _scope = RetryScope::enter();
        }
        let scope = RetryScope::enter(); // must not panic
        assert_eq!(scope.finish(), RetryStats::default());
    }
}
