//! Decoded-object cache: a sharded, epoch-invalidated LRU *above* the
//! page layer.
//!
//! The [`BufferPool`](crate::BufferPool) caches raw 4096-byte blocks, so a
//! pool hit still pays the warm-path tax: checksum verification of every
//! block of the node's extent plus a full entry/signature deserialization.
//! On warm top-k workloads that decode cost dominates (the I/O the paper
//! counts is already amortized). `DecodedCache<T>` closes the gap by
//! caching the *decoded* value — an R-Tree node, its signatures already
//! parsed — keyed by the extent's first [`BlockId`], behind `Arc` so warm
//! readers share one allocation.
//!
//! # Epoch invalidation
//!
//! The cache is invalidated wholesale by a monotonically increasing
//! **mutation epoch**. Writers bump it at every commit point (CoW tree
//! commits, `save_catalog`, free-list recycling); each shard remembers the
//! epoch it last served and lazily wipes itself the first time it is
//! touched under a newer one. Values decoded *before* a bump cannot leak
//! in afterwards either: [`DecodedCache::insert`] takes the epoch snapshot
//! the caller observed before reading the device and drops the insert if a
//! bump intervened. Copy-on-write storage makes this sound: a published
//! root only ever references extents written before its commit, so within
//! one epoch a `BlockId` maps to exactly one byte image.
//!
//! # Sharding
//!
//! Same scheme as the buffer pool: `block % N` selects one of N
//! independently locked shards, and the configured capacity is distributed
//! exactly (first `capacity % N` shards take one extra slot). Capacity 0
//! constructs a pass-through that never caches and never counts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::BlockId;

const NIL: usize = usize::MAX;

/// Default shard count for [`DecodedCache::new`] — matches the buffer
/// pool's so the two layers scale together under the batch engine.
pub const DEFAULT_DECODED_SHARDS: usize = 8;

struct Slot<T> {
    key: BlockId,
    value: Arc<T>,
    prev: usize,
    next: usize,
}

struct ShardState<T> {
    map: HashMap<BlockId, usize>,
    slots: Vec<Slot<T>>,
    /// Most recently used slot index.
    head: usize,
    /// Least recently used slot index.
    tail: usize,
    /// Epoch this shard last served; a newer global epoch wipes the shard
    /// on first touch.
    seen_epoch: u64,
}

impl<T> ShardState<T> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            seen_epoch: 0,
        }
    }

    /// Drops every entry and re-stamps the shard at `epoch`.
    fn wipe(&mut self, epoch: u64) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
        self.seen_epoch = epoch;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.detach(idx);
            self.push_front(idx);
        }
    }

    /// Installs `value` under `key`, evicting this shard's LRU victim if
    /// the shard is at `capacity`.
    fn install(&mut self, capacity: usize, key: BlockId, value: Arc<T>) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.touch(idx);
            return;
        }
        let idx = if self.slots.len() < capacity {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 implies a tail");
            self.detach(victim);
            let old = self.slots[victim].key;
            self.map.remove(&old);
            self.slots[victim].key = key;
            self.slots[victim].value = value;
            victim
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// A sharded LRU cache of decoded values keyed by [`BlockId`], invalidated
/// wholesale by a mutation epoch; see the module docs.
///
/// `T` is the decoded representation (e.g. an R-Tree node with its parsed
/// signatures). Values are shared out as `Arc<T>`, so a hit is one clone —
/// no checksum pass, no deserialization, no allocation.
pub struct DecodedCache<T> {
    /// Per-shard slot budgets, summing to exactly the requested capacity
    /// (empty when caching is disabled).
    shard_capacities: Box<[usize]>,
    shards: Box<[Mutex<ShardState<T>>]>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> DecodedCache<T> {
    /// A cache of `capacity` decoded values over
    /// [`DEFAULT_DECODED_SHARDS`] shards (fewer for tiny capacities;
    /// capacity 0 disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_DECODED_SHARDS)
    }

    /// A cache of exactly `capacity` values split over `shards`
    /// independent locks; `shards` is clamped to `[1, capacity]` and the
    /// remainder is distributed so no shard rounds to zero slots.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let nshards = if capacity == 0 {
            0
        } else {
            shards.clamp(1, capacity)
        };
        let base = capacity.checked_div(nshards).unwrap_or(0);
        let extra = capacity.checked_rem(nshards).unwrap_or(0);
        Self {
            shard_capacities: (0..nshards)
                .map(|i| base + usize::from(i < extra))
                .collect(),
            shards: (0..nshards)
                .map(|_| Mutex::new(ShardState::new()))
                .collect(),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The current mutation epoch. Snapshot it *before* reading the device
    /// and pass the snapshot to [`insert`](Self::insert) so a commit that
    /// lands mid-decode cannot publish a stale value.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bumps the mutation epoch, logically evicting every cached value.
    /// Writers call this at each commit point; shards reclaim their memory
    /// lazily on next touch.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Looks up the decoded value for `key`, touching it in the LRU order.
    /// Counts a hit or a miss (except in the capacity-0 pass-through
    /// configuration, which never counts).
    pub fn get(&self, key: BlockId) -> Option<Arc<T>> {
        if self.shards.is_empty() {
            return None;
        }
        let epoch = self.epoch();
        let si = (key % self.shards.len() as u64) as usize;
        let mut s = self.shards[si].lock();
        if s.seen_epoch != epoch {
            s.wipe(epoch);
        }
        if let Some(&idx) = s.map.get(&key) {
            s.touch(idx);
            let value = Arc::clone(&s.slots[idx].value);
            drop(s);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(value);
        }
        drop(s);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Installs `value` under `key`, provided the epoch is still the
    /// `snapshot` the caller took before reading and decoding the bytes.
    /// If a mutation committed in between, the value is silently dropped —
    /// it may describe a recycled extent.
    pub fn insert(&self, key: BlockId, snapshot: u64, value: Arc<T>) {
        if self.shards.is_empty() || snapshot != self.epoch() {
            return;
        }
        let si = (key % self.shards.len() as u64) as usize;
        let mut s = self.shards[si].lock();
        if s.seen_epoch != snapshot {
            s.wipe(snapshot);
        }
        s.install(self.shard_capacities[si], key, value);
    }

    /// Total slot capacity across shards — exactly the configured value.
    pub fn capacity(&self) -> usize {
        self.shard_capacities.iter().sum()
    }

    /// Number of values currently resident (stale shards count until their
    /// lazy wipe; [`len`](Self::len) is a memory gauge, not a validity
    /// count).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether no values are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached value immediately (counters are kept; the epoch
    /// is unchanged).
    pub fn clear(&self) {
        let epoch = self.epoch();
        for shard in &self.shards {
            shard.lock().wipe(epoch);
        }
    }

    /// Aggregate `(hits, misses)` observed by [`get`](Self::get) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of lookups served from the cache, in `[0.0, 1.0]`; `0.0`
    /// before any lookup (never `NaN`).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.hit_stats();
        crate::metrics::ratio(hits, hits + misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_shared_value() {
        let cache: DecodedCache<Vec<u32>> = DecodedCache::new(8);
        assert_eq!(cache.get(5), None);
        cache.insert(5, cache.epoch(), Arc::new(vec![1, 2, 3]));
        let v = cache.get(5).expect("hit");
        assert_eq!(*v, vec![1, 2, 3]);
        assert_eq!(cache.hit_stats(), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_is_passthrough() {
        let cache: DecodedCache<u32> = DecodedCache::new(0);
        cache.insert(1, cache.epoch(), Arc::new(7));
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.hit_stats(), (0, 0), "passthrough never counts");
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn capacity_distributes_the_remainder_exactly() {
        let cache: DecodedCache<u32> = DecodedCache::with_shards(9, 8);
        assert_eq!(cache.capacity(), 9);
        let cache: DecodedCache<u32> = DecodedCache::with_shards(3, 16);
        assert_eq!(cache.capacity(), 3, "shards clamp to capacity");
    }

    #[test]
    fn lru_evicts_within_a_shard() {
        // One shard, two slots: exact global LRU.
        let cache: DecodedCache<u64> = DecodedCache::with_shards(2, 1);
        let e = cache.epoch();
        cache.insert(1, e, Arc::new(1));
        cache.insert(2, e, Arc::new(2));
        assert!(cache.get(1).is_some()); // 1 becomes MRU
        cache.insert(3, e, Arc::new(3)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn epoch_bump_evicts_everything() {
        let cache: DecodedCache<u64> = DecodedCache::new(8);
        cache.insert(1, cache.epoch(), Arc::new(10));
        cache.insert(2, cache.epoch(), Arc::new(20));
        assert!(cache.get(1).is_some());
        cache.bump_epoch();
        assert_eq!(cache.get(1), None, "stale value must not survive a bump");
        assert_eq!(cache.get(2), None);
        // Fresh inserts under the new epoch serve again.
        cache.insert(1, cache.epoch(), Arc::new(11));
        assert_eq!(cache.get(1).as_deref(), Some(&11));
    }

    #[test]
    fn stale_snapshot_insert_is_dropped() {
        let cache: DecodedCache<u64> = DecodedCache::new(8);
        let before = cache.epoch();
        cache.bump_epoch(); // a commit lands while the caller was decoding
        cache.insert(4, before, Arc::new(40));
        assert_eq!(cache.get(4), None, "pre-bump decode must not be cached");
    }

    #[test]
    fn clear_drops_values_but_keeps_the_epoch() {
        let cache: DecodedCache<u64> = DecodedCache::new(4);
        cache.insert(1, cache.epoch(), Arc::new(1));
        let e = cache.epoch();
        cache.clear();
        assert_eq!(cache.epoch(), e);
        assert!(cache.is_empty());
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn concurrent_readers_share_one_allocation() {
        let cache: Arc<DecodedCache<Vec<u8>>> = Arc::new(DecodedCache::new(16));
        cache.insert(3, cache.epoch(), Arc::new(vec![7; 128]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let v = cache.get(3).expect("hit");
                        assert_eq!(v[0], 7);
                    }
                });
            }
        });
        assert_eq!(cache.hit_stats().0, 400);
    }
}
