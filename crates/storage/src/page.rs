//! Checksummed page format: a per-block CRC32 trailer.
//!
//! A disk-resident index must notice when the disk lies. Every *sealed*
//! block reserves its last [`PAGE_TRAILER_LEN`] bytes for a trailer:
//!
//! ```text
//! byte 4088..4092   CRC32 (IEEE) over bytes 0..4088, little-endian
//! byte 4092..4094   trailer magic 0x5043 ("CP", checksummed page)
//! byte 4094         format version (1)
//! byte 4095         reserved (0)
//! ```
//!
//! [`seal`] fills the trailer in place before a write; [`verify`] checks it
//! after a read and returns [`StorageError::Corrupt`] on any mismatch, so a
//! single flipped bit anywhere in the block — payload or trailer — is
//! detected instead of being decoded as valid geometry or signatures.
//! Callers that store structured data across several blocks use the sealed
//! extent helpers in [`crate::extent`], which give each block of the run its
//! own trailer and expose only the [`PAGE_PAYLOAD`]-byte payloads.

use crate::{Result, StorageError, BLOCK_SIZE};

/// Bytes reserved at the end of every sealed block.
pub const PAGE_TRAILER_LEN: usize = 8;

/// Usable payload bytes in a sealed block.
pub const PAGE_PAYLOAD: usize = BLOCK_SIZE - PAGE_TRAILER_LEN;

/// Trailer magic, little-endian at bytes 4092..4094.
const TRAILER_MAGIC: u16 = 0x5043;

/// On-disk format version of the sealed page layout.
pub const PAGE_VERSION: u8 = 1;

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// built at compile time so no dependency is needed.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Writes the checksum trailer over the last [`PAGE_TRAILER_LEN`] bytes of
/// `block`, covering everything before it.
pub fn seal(block: &mut [u8; BLOCK_SIZE]) {
    let crc = crc32(&block[..PAGE_PAYLOAD]);
    block[PAGE_PAYLOAD..PAGE_PAYLOAD + 4].copy_from_slice(&crc.to_le_bytes());
    block[PAGE_PAYLOAD + 4..PAGE_PAYLOAD + 6].copy_from_slice(&TRAILER_MAGIC.to_le_bytes());
    block[PAGE_PAYLOAD + 6] = PAGE_VERSION;
    block[PAGE_PAYLOAD + 7] = 0;
}

/// Validates the trailer of a sealed block.
///
/// Returns [`StorageError::Corrupt`] if the magic, version, or checksum do
/// not match — i.e. the block was torn, bit-flipped, or never sealed.
pub fn verify(block: &[u8; BLOCK_SIZE]) -> Result<()> {
    let magic = u16::from_le_bytes([block[PAGE_PAYLOAD + 4], block[PAGE_PAYLOAD + 5]]);
    if magic != TRAILER_MAGIC {
        return Err(StorageError::Corrupt("page trailer magic mismatch".into()));
    }
    let version = block[PAGE_PAYLOAD + 6];
    if version != PAGE_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported page version {version}"
        )));
    }
    let stored = u32::from_le_bytes([
        block[PAGE_PAYLOAD],
        block[PAGE_PAYLOAD + 1],
        block[PAGE_PAYLOAD + 2],
        block[PAGE_PAYLOAD + 3],
    ]);
    let computed = crc32(&block[..PAGE_PAYLOAD]);
    if stored != computed {
        return Err(StorageError::Corrupt(format!(
            "page checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let mut block = *crate::zeroed_block();
        block[..5].copy_from_slice(b"hello");
        seal(&mut block);
        verify(&block).unwrap();
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut block = *crate::zeroed_block();
        for (i, b) in block[..PAGE_PAYLOAD].iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        seal(&mut block);
        // Flip one bit at a spread of positions, including inside the trailer.
        for pos in [0, 1, 137, PAGE_PAYLOAD - 1, PAGE_PAYLOAD, PAGE_PAYLOAD + 5] {
            let mut copy = block;
            copy[pos] ^= 0x10;
            assert!(
                matches!(verify(&copy), Err(StorageError::Corrupt(_))),
                "flip at byte {pos} must be detected"
            );
        }
    }

    #[test]
    fn unsealed_block_is_corrupt() {
        let block = *crate::zeroed_block();
        assert!(matches!(verify(&block), Err(StorageError::Corrupt(_))));
    }
}
