//! Random vs. sequential I/O accounting.
//!
//! The paper's figures plot, for every algorithm, the number of **random**
//! disk block accesses (thick bars) and **sequential** ones (thin lines),
//! observing that "execution time is primarily proportional to the random
//! access numbers". [`TrackedDevice`] reproduces that instrumentation: it
//! wraps any [`BlockDevice`] and classifies each access by comparing the
//! block id with the immediately preceding access on the same device — a
//! disk arm model. Accessing block `b` right after block `b - 1` is
//! sequential; anything else (including re-reading the same block) requires
//! a seek and counts as random.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{BlockDevice, BlockId, Result, BLOCK_SIZE};

/// Sentinel for "no previous access".
const NO_PREV: u64 = u64::MAX;

/// Shared, thread-safe I/O counters.
///
/// Cloneable handles (via `Arc`) let the query layer snapshot counters
/// before and after a query and report the delta.
#[derive(Debug, Default)]
pub struct IoStats {
    random_reads: AtomicU64,
    seq_reads: AtomicU64,
    random_writes: AtomicU64,
    seq_writes: AtomicU64,
    last_block: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self {
            last_block: AtomicU64::new(NO_PREV),
            ..Self::default()
        }
    }

    /// Records an access to `id`, classifying it against the previous one.
    #[inline]
    pub fn record(&self, id: BlockId, write: bool) {
        let prev = self.last_block.swap(id, Ordering::Relaxed);
        let sequential = prev != NO_PREV && id == prev.wrapping_add(1);
        let counter = match (write, sequential) {
            (false, false) => &self.random_reads,
            (false, true) => &self.seq_reads,
            (true, false) => &self.random_writes,
            (true, true) => &self.seq_writes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            random_reads: self.random_reads.load(Ordering::Relaxed),
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            random_writes: self.random_writes.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters (and the arm position) to the initial state.
    pub fn reset(&self) {
        self.random_reads.store(0, Ordering::Relaxed);
        self.seq_reads.store(0, Ordering::Relaxed);
        self.random_writes.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.last_block.store(NO_PREV, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] counters.
///
/// Supports subtraction, so `after - before` yields the I/O a single query
/// performed — the quantity the paper's figures plot.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Block accesses that required a seek (reads).
    pub random_reads: u64,
    /// Block accesses adjacent to the previous access (reads).
    pub seq_reads: u64,
    /// Block accesses that required a seek (writes).
    pub random_writes: u64,
    /// Block accesses adjacent to the previous access (writes).
    pub seq_writes: u64,
}

impl IoSnapshot {
    /// Total random accesses (reads + writes).
    pub fn random(&self) -> u64 {
        self.random_reads + self.random_writes
    }

    /// Total sequential accesses (reads + writes).
    pub fn sequential(&self) -> u64 {
        self.seq_reads + self.seq_writes
    }

    /// Total block accesses of any kind.
    pub fn total(&self) -> u64 {
        self.random() + self.sequential()
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.total() * BLOCK_SIZE as u64
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;

    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            random_reads: self.random_reads - rhs.random_reads,
            seq_reads: self.seq_reads - rhs.seq_reads,
            random_writes: self.random_writes - rhs.random_writes,
            seq_writes: self.seq_writes - rhs.seq_writes,
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;

    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            random_reads: self.random_reads + rhs.random_reads,
            seq_reads: self.seq_reads + rhs.seq_reads,
            random_writes: self.random_writes + rhs.random_writes,
            seq_writes: self.seq_writes + rhs.seq_writes,
        }
    }
}

impl std::iter::Sum for IoSnapshot {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

/// A [`BlockDevice`] wrapper that feeds every access into an [`IoStats`].
pub struct TrackedDevice<D> {
    inner: D,
    stats: Arc<IoStats>,
}

impl<D: BlockDevice> TrackedDevice<D> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: D) -> Self {
        Self::with_stats(inner, Arc::new(IoStats::new()))
    }

    /// Wraps `inner`, accumulating into an existing counter handle (lets a
    /// caller own the handle before constructing the device).
    pub fn with_stats(inner: D, stats: Arc<IoStats>) -> Self {
        Self { inner, stats }
    }

    /// Handle to the shared counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for TrackedDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.stats.record(id, false);
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.stats.record(id, true);
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        // Allocation itself is metadata, not a block transfer.
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn classifies_sequential_and_random() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(10).unwrap();
        let mut buf = crate::zeroed_block();

        dev.read_block(3, &mut buf).unwrap(); // first access: random
        dev.read_block(4, &mut buf).unwrap(); // sequential
        dev.read_block(5, &mut buf).unwrap(); // sequential
        dev.read_block(5, &mut buf).unwrap(); // same block again: random (seek back)
        dev.read_block(0, &mut buf).unwrap(); // random
        dev.read_block(1, &mut buf).unwrap(); // sequential

        let s = dev.stats().snapshot();
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.seq_reads, 3);
        assert_eq!(s.random_writes, 0);
    }

    #[test]
    fn writes_share_the_arm_position() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(4).unwrap();
        let buf = crate::zeroed_block();
        let mut out = crate::zeroed_block();

        dev.write_block(0, &buf).unwrap(); // random
        dev.write_block(1, &buf).unwrap(); // sequential
        dev.read_block(2, &mut out).unwrap(); // sequential (follows the write)

        let s = dev.stats().snapshot();
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(4).unwrap();
        let mut buf = crate::zeroed_block();
        dev.read_block(0, &mut buf).unwrap();

        let before = dev.stats().snapshot();
        dev.read_block(2, &mut buf).unwrap();
        dev.read_block(3, &mut buf).unwrap();
        let delta = dev.stats().snapshot() - before;
        assert_eq!(delta.random_reads, 1);
        assert_eq!(delta.seq_reads, 1);
        assert_eq!(delta.bytes(), 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn reset_clears_counters_and_arm() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(4).unwrap();
        let mut buf = crate::zeroed_block();
        dev.read_block(0, &mut buf).unwrap();
        dev.read_block(1, &mut buf).unwrap();
        dev.stats().reset();
        assert_eq!(dev.stats().snapshot(), IoSnapshot::default());
        // After reset the next access is random even if adjacent.
        dev.read_block(2, &mut buf).unwrap();
        assert_eq!(dev.stats().snapshot().random_reads, 1);
    }
}
