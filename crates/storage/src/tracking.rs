//! Random vs. sequential I/O accounting.
//!
//! The paper's figures plot, for every algorithm, the number of **random**
//! disk block accesses (thick bars) and **sequential** ones (thin lines),
//! observing that "execution time is primarily proportional to the random
//! access numbers". [`TrackedDevice`] reproduces that instrumentation: it
//! wraps any [`BlockDevice`] and classifies each access by comparing the
//! block id with the immediately preceding access on the same device — a
//! disk arm model. Accessing block `b` right after block `b - 1` is
//! sequential; anything else (including re-reading the same block) requires
//! a seek and counts as random.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{BlockDevice, BlockId, Result, BLOCK_SIZE};

/// Sentinel for "no previous access".
const NO_PREV: u64 = u64::MAX;

/// Shared, thread-safe I/O counters.
///
/// Cloneable handles (via `Arc`) let the query layer snapshot counters
/// before and after a query and report the delta.
///
/// # Concurrency and classification
///
/// The counter *totals* are exact under concurrency (plain atomic
/// increments). The random/sequential *split*, however, models a single
/// disk arm via one shared `last_block` register: when several threads
/// interleave accesses on the same device, thread A's access can be
/// classified against thread B's arm position, so per-access
/// classification is only meaningful for single-threaded (or externally
/// serialized) workloads — which is how the paper's experiments run.
/// Subtracting two global snapshots taken around one query while other
/// queries run is worse still: the delta includes every concurrent
/// thread's traffic.
///
/// Concurrent engines that want *per-query* attribution should wrap each
/// query in an [`IoScope`], which keeps per-thread counters and a
/// per-thread arm position per device, and therefore stays deterministic
/// no matter how threads interleave.
#[derive(Debug, Default)]
pub struct IoStats {
    random_reads: AtomicU64,
    seq_reads: AtomicU64,
    random_writes: AtomicU64,
    seq_writes: AtomicU64,
    last_block: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self {
            last_block: AtomicU64::new(NO_PREV),
            ..Self::default()
        }
    }

    /// Records an access to `id`, classifying it against the previous one.
    ///
    /// Note: `last_block` is shared across threads, so under concurrent
    /// access the random/sequential split of the *global* counters is
    /// interleaving-dependent (see the type-level docs). The active
    /// [`IoScope`], if any, classifies the same access against a
    /// per-thread arm position instead.
    #[inline]
    pub fn record(&self, id: BlockId, write: bool) {
        let prev = self.last_block.swap(id, Ordering::Relaxed);
        let sequential = prev != NO_PREV && id == prev.wrapping_add(1);
        let counter = match (write, sequential) {
            (false, false) => &self.random_reads,
            (false, true) => &self.seq_reads,
            (true, false) => &self.random_writes,
            (true, true) => &self.seq_writes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        scope_record(self as *const Self as usize, id, write);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            random_reads: self.random_reads.load(Ordering::Relaxed),
            seq_reads: self.seq_reads.load(Ordering::Relaxed),
            random_writes: self.random_writes.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters (and the arm position) to the initial state.
    pub fn reset(&self) {
        self.random_reads.store(0, Ordering::Relaxed);
        self.seq_reads.store(0, Ordering::Relaxed);
        self.random_writes.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.last_block.store(NO_PREV, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] counters.
///
/// Supports subtraction, so `after - before` yields the I/O a single query
/// performed — the quantity the paper's figures plot.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Block accesses that required a seek (reads).
    pub random_reads: u64,
    /// Block accesses adjacent to the previous access (reads).
    pub seq_reads: u64,
    /// Block accesses that required a seek (writes).
    pub random_writes: u64,
    /// Block accesses adjacent to the previous access (writes).
    pub seq_writes: u64,
}

impl IoSnapshot {
    /// Total random accesses (reads + writes).
    pub fn random(&self) -> u64 {
        self.random_reads + self.random_writes
    }

    /// Total sequential accesses (reads + writes).
    pub fn sequential(&self) -> u64 {
        self.seq_reads + self.seq_writes
    }

    /// Total block accesses of any kind.
    pub fn total(&self) -> u64 {
        self.random() + self.sequential()
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.total() * BLOCK_SIZE as u64
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;

    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            random_reads: self.random_reads - rhs.random_reads,
            seq_reads: self.seq_reads - rhs.seq_reads,
            random_writes: self.random_writes - rhs.random_writes,
            seq_writes: self.seq_writes - rhs.seq_writes,
        }
    }
}

impl std::ops::Add for IoSnapshot {
    type Output = IoSnapshot;

    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            random_reads: self.random_reads + rhs.random_reads,
            seq_reads: self.seq_reads + rhs.seq_reads,
            random_writes: self.random_writes + rhs.random_writes,
            seq_writes: self.seq_writes + rhs.seq_writes,
        }
    }
}

impl std::iter::Sum for IoSnapshot {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

thread_local! {
    /// Per-thread attribution scope, keyed by `IoStats` instance address so
    /// one scope can observe several devices (index, objects, ...) at once.
    static ACTIVE_SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

struct ScopeState {
    /// Accumulated per-device deltas, keyed by `IoStats` address.
    counts: HashMap<usize, IoSnapshot>,
    /// Per-device arm position as seen by *this thread only*.
    last: HashMap<usize, BlockId>,
}

/// Feeds one access into the current thread's scope, if one is active.
#[inline]
fn scope_record(stats_addr: usize, id: BlockId, write: bool) {
    ACTIVE_SCOPE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        let prev = state.last.insert(stats_addr, id);
        let sequential = prev.is_some_and(|p| id == p.wrapping_add(1));
        let snap = state.counts.entry(stats_addr).or_default();
        match (write, sequential) {
            (false, false) => snap.random_reads += 1,
            (false, true) => snap.seq_reads += 1,
            (true, false) => snap.random_writes += 1,
            (true, true) => snap.seq_writes += 1,
        }
    });
}

/// Deterministic per-thread I/O attribution.
///
/// While a scope is active on a thread, every [`IoStats::record`] call made
/// *from that thread* is additionally tallied into the scope, classified
/// against a per-thread, per-device arm position. Other threads' traffic is
/// invisible to the scope, so the delta returned by [`IoScope::finish`] is
/// exactly the I/O the enclosed code performed — the property the batch
/// query engine needs to attribute I/O to individual queries running
/// concurrently (global before/after snapshot subtraction would lump every
/// in-flight query together).
///
/// The trade-off: the per-thread arm model treats each thread as having
/// its own disk arm, so a scoped query's random/sequential split matches
/// what the same query reports when run alone, not the seek pattern a
/// single shared arm would produce under interleaving.
///
/// Scopes do not nest; entering a second scope on the same thread panics.
///
/// ```
/// # use ir2_storage::{BlockDevice, IoScope, MemDevice, TrackedDevice};
/// let dev = TrackedDevice::new(MemDevice::new());
/// dev.allocate(4).unwrap();
/// let mut buf = ir2_storage::zeroed_block();
/// let scope = IoScope::enter();
/// dev.read_block(0, &mut buf).unwrap();
/// dev.read_block(1, &mut buf).unwrap();
/// let io = scope.finish().for_stats(&dev.stats());
/// assert_eq!((io.random_reads, io.seq_reads), (1, 1));
/// ```
#[must_use = "a scope that is never finished records nothing useful"]
pub struct IoScope {
    /// Prevents `Send`: the scope must be finished on the entering thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl IoScope {
    /// Starts attributing this thread's I/O. Panics if a scope is already
    /// active on this thread.
    pub fn enter() -> Self {
        ACTIVE_SCOPE.with(|cell| {
            let mut slot = cell.borrow_mut();
            assert!(slot.is_none(), "IoScope does not nest");
            *slot = Some(ScopeState {
                counts: HashMap::new(),
                last: HashMap::new(),
            });
        });
        Self {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Ends the scope and returns everything it observed.
    pub fn finish(self) -> ScopedIo {
        let state = ACTIVE_SCOPE.with(|cell| cell.borrow_mut().take());
        std::mem::forget(self); // Drop would otherwise clear an already-taken slot.
        let state = state.expect("scope state present until finish");
        ScopedIo {
            counts: state.counts,
        }
    }
}

impl Drop for IoScope {
    fn drop(&mut self) {
        ACTIVE_SCOPE.with(|cell| cell.borrow_mut().take());
    }
}

/// The I/O observed by one [`IoScope`], broken down per device.
#[derive(Debug, Default, Clone)]
pub struct ScopedIo {
    counts: HashMap<usize, IoSnapshot>,
}

impl ScopedIo {
    /// The delta attributed to the device whose counters are `stats`
    /// (zero if the scope never saw that device).
    pub fn for_stats(&self, stats: &IoStats) -> IoSnapshot {
        self.counts
            .get(&(stats as *const IoStats as usize))
            .copied()
            .unwrap_or_default()
    }

    /// Sum over every device the scope observed.
    pub fn total(&self) -> IoSnapshot {
        self.counts.values().copied().sum()
    }
}

/// A [`BlockDevice`] wrapper that feeds every access into an [`IoStats`].
pub struct TrackedDevice<D> {
    inner: D,
    stats: Arc<IoStats>,
}

impl<D: BlockDevice> TrackedDevice<D> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: D) -> Self {
        Self::with_stats(inner, Arc::new(IoStats::new()))
    }

    /// Wraps `inner`, accumulating into an existing counter handle (lets a
    /// caller own the handle before constructing the device).
    pub fn with_stats(inner: D, stats: Arc<IoStats>) -> Self {
        Self { inner, stats }
    }

    /// Handle to the shared counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for TrackedDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.stats.record(id, false);
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.stats.record(id, true);
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        // Allocation itself is metadata, not a block transfer.
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn classifies_sequential_and_random() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(10).unwrap();
        let mut buf = crate::zeroed_block();

        dev.read_block(3, &mut buf).unwrap(); // first access: random
        dev.read_block(4, &mut buf).unwrap(); // sequential
        dev.read_block(5, &mut buf).unwrap(); // sequential
        dev.read_block(5, &mut buf).unwrap(); // same block again: random (seek back)
        dev.read_block(0, &mut buf).unwrap(); // random
        dev.read_block(1, &mut buf).unwrap(); // sequential

        let s = dev.stats().snapshot();
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.seq_reads, 3);
        assert_eq!(s.random_writes, 0);
    }

    #[test]
    fn writes_share_the_arm_position() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(4).unwrap();
        let buf = crate::zeroed_block();
        let mut out = crate::zeroed_block();

        dev.write_block(0, &buf).unwrap(); // random
        dev.write_block(1, &buf).unwrap(); // sequential
        dev.read_block(2, &mut out).unwrap(); // sequential (follows the write)

        let s = dev.stats().snapshot();
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(4).unwrap();
        let mut buf = crate::zeroed_block();
        dev.read_block(0, &mut buf).unwrap();

        let before = dev.stats().snapshot();
        dev.read_block(2, &mut buf).unwrap();
        dev.read_block(3, &mut buf).unwrap();
        let delta = dev.stats().snapshot() - before;
        assert_eq!(delta.random_reads, 1);
        assert_eq!(delta.seq_reads, 1);
        assert_eq!(delta.bytes(), 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn scope_attributes_only_this_thread() {
        let dev = Arc::new(TrackedDevice::new(MemDevice::new()));
        dev.allocate(64).unwrap();
        // Background noise from other threads must not leak into the scope.
        std::thread::scope(|s| {
            let noisy = Arc::clone(&dev);
            let stop = Arc::new(AtomicU64::new(0));
            let stop2 = Arc::clone(&stop);
            s.spawn(move || {
                let mut buf = crate::zeroed_block();
                while stop2.load(Ordering::Relaxed) == 0 {
                    noisy.read_block(63, &mut buf).unwrap();
                }
            });
            let mut buf = crate::zeroed_block();
            let scope = IoScope::enter();
            dev.read_block(0, &mut buf).unwrap();
            dev.read_block(1, &mut buf).unwrap();
            dev.read_block(10, &mut buf).unwrap();
            let io = scope.finish().for_stats(&dev.stats());
            stop.store(1, Ordering::Relaxed);
            assert_eq!(io.random_reads, 2);
            assert_eq!(io.seq_reads, 1);
            assert_eq!(io.total(), 3);
        });
    }

    #[test]
    fn scope_separates_devices() {
        let a = TrackedDevice::new(MemDevice::new());
        let b = TrackedDevice::new(MemDevice::new());
        a.allocate(4).unwrap();
        b.allocate(4).unwrap();
        let mut buf = crate::zeroed_block();
        let scope = IoScope::enter();
        a.read_block(0, &mut buf).unwrap();
        a.read_block(1, &mut buf).unwrap();
        b.read_block(2, &mut buf).unwrap();
        let io = scope.finish();
        assert_eq!(io.for_stats(&a.stats()).total(), 2);
        assert_eq!(io.for_stats(&b.stats()).total(), 1);
        // Device b's access is random in b's own arm model even though it
        // would have been sequential on a shared arm (a ended at block 1).
        assert_eq!(io.for_stats(&b.stats()).random_reads, 1);
        assert_eq!(io.total().total(), 3);
    }

    #[test]
    fn dropped_scope_deactivates() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(2).unwrap();
        let mut buf = crate::zeroed_block();
        {
            let _scope = IoScope::enter();
            dev.read_block(0, &mut buf).unwrap();
            // Dropped without finish(): attribution simply stops.
        }
        let scope = IoScope::enter(); // must not panic — slot was cleared
        dev.read_block(1, &mut buf).unwrap();
        assert_eq!(scope.finish().total().total(), 1);
    }

    #[test]
    fn reset_clears_counters_and_arm() {
        let dev = TrackedDevice::new(MemDevice::new());
        dev.allocate(4).unwrap();
        let mut buf = crate::zeroed_block();
        dev.read_block(0, &mut buf).unwrap();
        dev.read_block(1, &mut buf).unwrap();
        dev.stats().reset();
        assert_eq!(dev.stats().snapshot(), IoSnapshot::default());
        // After reset the next access is random even if adjacent.
        dev.read_block(2, &mut buf).unwrap();
        assert_eq!(dev.stats().snapshot().random_reads, 1);
    }
}
