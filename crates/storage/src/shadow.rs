//! Atomic catalog storage via alternating shadow extents.
//!
//! A catalog that is rewritten in place at a fixed block is torn by any
//! crash mid-write. [`ShadowPair`] instead keeps **two** header blocks
//! (blocks 0 and 1) and writes each new catalog version to a payload extent
//! owned by the slot *not* holding the current version:
//!
//! ```text
//! block 0   header slot 0 (sealed): magic, epoch, payload location + CRC
//! block 1   header slot 1 (sealed): likewise
//! block 2+  payload extents, allocated as needed
//! ```
//!
//! A save writes the payload extent first, syncs, then writes the single
//! header block and syncs again; the header write is the commit point. On
//! open, both headers are read and the one with the **highest valid epoch**
//! whose payload also verifies wins. A crash anywhere in `save` therefore
//! leaves the previous version intact and discoverable: torn payload or
//! torn header blocks fail their checksums and the other slot is used. Only
//! if *neither* slot holds a valid version does open fail with
//! [`StorageError::Corrupt`].

use parking_lot::Mutex;

use crate::page::{self, crc32, PAGE_PAYLOAD};
use crate::{extent, BlockDevice, BlockId, Result, StorageError, BLOCK_SIZE};

const HEADER_MAGIC: &[u8; 4] = b"IR2S";

/// Header layout inside the sealed payload of a header block:
/// magic(4) epoch(8) payload_first(8) payload_nblocks(4) payload_len(8)
/// payload_crc(4) = 36 bytes; the rest of the payload is zero.
#[derive(Clone, Copy, Debug)]
struct Slot {
    epoch: u64,
    payload_first: BlockId,
    payload_nblocks: u32,
    payload_len: u64,
    payload_crc: u32,
}

impl Slot {
    fn encode(&self, block: &mut [u8; BLOCK_SIZE]) {
        block[..PAGE_PAYLOAD].fill(0);
        block[0..4].copy_from_slice(HEADER_MAGIC);
        block[4..12].copy_from_slice(&self.epoch.to_le_bytes());
        block[12..20].copy_from_slice(&self.payload_first.to_le_bytes());
        block[20..24].copy_from_slice(&self.payload_nblocks.to_le_bytes());
        block[24..32].copy_from_slice(&self.payload_len.to_le_bytes());
        block[32..36].copy_from_slice(&self.payload_crc.to_le_bytes());
        page::seal(block);
    }

    fn decode(block: &[u8; BLOCK_SIZE]) -> Result<Self> {
        page::verify(block)?;
        if &block[0..4] != HEADER_MAGIC {
            return Err(StorageError::Corrupt("bad shadow header magic".into()));
        }
        let u64_at = |o: usize| u64::from_le_bytes(block[o..o + 8].try_into().unwrap());
        let u32_at = |o: usize| u32::from_le_bytes(block[o..o + 4].try_into().unwrap());
        Ok(Slot {
            epoch: u64_at(4),
            payload_first: u64_at(12),
            payload_nblocks: u32_at(20),
            payload_len: u64_at(24),
            payload_crc: u32_at(32),
        })
    }
}

struct ShadowState {
    /// Epoch of the current durable version; the next save uses `epoch + 1`.
    epoch: u64,
    /// Payload extent owned by each slot (first block, capacity in blocks),
    /// reused across saves when large enough.
    extents: [Option<(BlockId, u32)>; 2],
}

/// Crash-safe versioned storage for one logical blob (the catalog).
pub struct ShadowPair<D> {
    dev: D,
    state: Mutex<ShadowState>,
}

impl<D: BlockDevice> ShadowPair<D> {
    /// Initializes a fresh device: allocates the two header blocks and
    /// writes epoch-0 headers pointing at no payload. `open` on a device in
    /// this state fails (no version saved yet); call [`save`](Self::save)
    /// first.
    pub fn create(dev: D) -> Result<Self> {
        if dev.num_blocks() != 0 {
            return Err(StorageError::Corrupt(
                "shadow create on non-empty device".into(),
            ));
        }
        dev.allocate(2)?;
        // Deliberately left unsealed: a slot that was never written is
        // indistinguishable from a torn one, and both are simply invalid.
        Ok(Self {
            dev,
            state: Mutex::new(ShadowState {
                epoch: 0,
                extents: [None, None],
            }),
        })
    }

    /// Opens an existing pair and returns the payload of the highest valid
    /// epoch. Fails with [`StorageError::Corrupt`] if neither slot holds a
    /// verifiable version.
    pub fn open(dev: D) -> Result<(Self, Vec<u8>)> {
        if dev.num_blocks() < 2 {
            return Err(StorageError::Corrupt(
                "shadow device too small for header pair".into(),
            ));
        }
        let mut slots: [Option<Slot>; 2] = [None, None];
        let mut block = [0u8; BLOCK_SIZE];
        for (i, stored) in slots.iter_mut().enumerate() {
            if dev.read_block(i as u64, &mut block).is_ok() {
                if let Ok(slot) = Slot::decode(&block) {
                    *stored = Some(slot);
                }
            }
        }
        // Try the higher epoch first, falling back to the other slot if its
        // payload does not verify (e.g. torn while being overwritten).
        let mut order: Vec<Slot> = slots.iter().flatten().copied().collect();
        order.sort_by_key(|s| std::cmp::Reverse(s.epoch));
        for slot in &order {
            match Self::load_payload(&dev, slot) {
                Ok(payload) => {
                    let extents = [
                        slots[0].map(|s| (s.payload_first, s.payload_nblocks)),
                        slots[1].map(|s| (s.payload_first, s.payload_nblocks)),
                    ];
                    return Ok((
                        Self {
                            dev,
                            state: Mutex::new(ShadowState {
                                epoch: slot.epoch,
                                extents,
                            }),
                        },
                        payload,
                    ));
                }
                Err(StorageError::Corrupt(_)) | Err(StorageError::OutOfBounds { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(StorageError::Corrupt(
            "no valid catalog version in either shadow slot".into(),
        ))
    }

    fn load_payload(dev: &D, slot: &Slot) -> Result<Vec<u8>> {
        if slot.payload_nblocks == 0 {
            return Err(StorageError::Corrupt("shadow slot has no payload".into()));
        }
        let len = slot.payload_len as usize;
        if len > slot.payload_nblocks as usize * PAGE_PAYLOAD {
            return Err(StorageError::Corrupt(
                "shadow payload length exceeds its extent".into(),
            ));
        }
        let mut payload =
            extent::read_extent_sealed(dev, slot.payload_first, slot.payload_nblocks)?;
        payload.truncate(len);
        if crc32(&payload) != slot.payload_crc {
            return Err(StorageError::Corrupt(
                "shadow payload checksum mismatch".into(),
            ));
        }
        Ok(payload)
    }

    /// Atomically replaces the stored blob with `payload`.
    ///
    /// Ordering: payload extent (sealed) → sync → header block (sealed) →
    /// sync. The header write flips the epoch; until it lands, `open` still
    /// returns the previous version.
    pub fn save(&self, payload: &[u8]) -> Result<()> {
        if payload.is_empty() {
            return Err(StorageError::Corrupt("empty catalog payload".into()));
        }
        let mut state = self.state.lock();
        let epoch = state.epoch + 1;
        let slot_idx = (epoch % 2) as usize;
        let needed = extent::sealed_blocks_for(payload.len());
        // Reuse the slot's own extent when large enough — its current
        // contents belong to a version two epochs old, never the live one.
        let (first, cap) = match state.extents[slot_idx] {
            Some((first, cap)) if cap >= needed => (first, cap),
            _ => (self.dev.allocate(needed as u64)?, needed),
        };
        extent::write_extent_sealed(&self.dev, first, payload)?;
        self.dev.sync()?;
        let slot = Slot {
            epoch,
            payload_first: first,
            payload_nblocks: needed,
            payload_len: payload.len() as u64,
            payload_crc: crc32(payload),
        };
        let mut block = [0u8; BLOCK_SIZE];
        slot.encode(&mut block);
        self.dev.write_block(slot_idx as u64, &block)?;
        self.dev.sync()?;
        state.epoch = epoch;
        state.extents[slot_idx] = Some((first, cap));
        Ok(())
    }

    /// Epoch of the current durable version (0 before the first save).
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::FlakyDevice;
    use crate::MemDevice;
    use std::sync::Arc;

    #[test]
    fn save_open_roundtrip_alternates_slots() {
        let dev = Arc::new(MemDevice::new());
        let pair = ShadowPair::create(Arc::clone(&dev)).unwrap();
        pair.save(b"version one").unwrap();
        pair.save(b"version two, a bit longer").unwrap();
        pair.save(b"v3").unwrap();
        assert_eq!(pair.epoch(), 3);
        drop(pair);
        let (pair, payload) = ShadowPair::open(Arc::clone(&dev)).unwrap();
        assert_eq!(payload, b"v3");
        assert_eq!(pair.epoch(), 3);
    }

    #[test]
    fn open_before_first_save_is_corrupt() {
        let dev = Arc::new(MemDevice::new());
        ShadowPair::create(Arc::clone(&dev)).unwrap();
        assert!(matches!(
            ShadowPair::open(dev).map(|_| ()),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn torn_header_falls_back_to_previous_version() {
        let dev = Arc::new(MemDevice::new());
        let pair = ShadowPair::create(Arc::clone(&dev)).unwrap();
        pair.save(b"old").unwrap(); // epoch 1 → slot 1
        pair.save(b"new").unwrap(); // epoch 2 → slot 0
        drop(pair);
        // Garble the epoch-2 header (block 0): opener must fall back to "old".
        let mut block = crate::zeroed_block();
        dev.read_block(0, &mut block).unwrap();
        block[7] ^= 0xFF;
        dev.write_block(0, &block).unwrap();
        let (_, payload) = ShadowPair::open(Arc::clone(&dev)).unwrap();
        assert_eq!(payload, b"old");
    }

    #[test]
    fn torn_payload_falls_back_to_previous_version() {
        let dev = Arc::new(MemDevice::new());
        let pair = ShadowPair::create(Arc::clone(&dev)).unwrap();
        pair.save(&vec![1u8; 10_000]).unwrap(); // epoch 1
        pair.save(&vec![2u8; 10_000]).unwrap(); // epoch 2
                                                // Find epoch 2's payload extent from its header and garble a middle block.
        let mut header = crate::zeroed_block();
        dev.read_block(0, &mut header).unwrap();
        let slot = Slot::decode(&header).unwrap();
        assert_eq!(slot.epoch, 2);
        let mut victim = crate::zeroed_block();
        dev.read_block(slot.payload_first + 1, &mut victim).unwrap();
        victim[17] ^= 0x40;
        dev.write_block(slot.payload_first + 1, &victim).unwrap();
        drop(pair);
        let (pair, payload) = ShadowPair::open(Arc::clone(&dev)).unwrap();
        assert_eq!(payload, vec![1u8; 10_000]);
        // And the store keeps working: the next save must not resurrect v2.
        pair.save(b"after recovery").unwrap();
        drop(pair);
        let (_, payload) = ShadowPair::open(dev).unwrap();
        assert_eq!(payload, b"after recovery");
    }

    #[test]
    fn failed_save_leaves_previous_version_openable() {
        let dev = Arc::new(MemDevice::new());
        let pair = ShadowPair::create(Arc::clone(&dev)).unwrap();
        pair.save(b"durable").unwrap();
        drop(pair);
        // Every possible failure budget during a save of a 3-block payload:
        // reopen must always yield either the old or the new version.
        for budget in 0..12u64 {
            let snapshot = Arc::new(MemDevice::new());
            copy_device(&dev, &snapshot);
            let flaky = FlakyDevice::new(Arc::clone(&snapshot), budget);
            // The open itself may exhaust the budget; that writes nothing.
            if let Ok((pair, _)) = ShadowPair::open(&flaky) {
                let _ = pair.save(&vec![9u8; 2 * PAGE_PAYLOAD + 5]);
            }
            let (_, payload) = ShadowPair::open(Arc::clone(&snapshot)).unwrap();
            assert!(
                payload == b"durable" || payload == vec![9u8; 2 * PAGE_PAYLOAD + 5],
                "budget {budget}: unexpected payload of {} bytes",
                payload.len()
            );
        }
    }

    fn copy_device(src: &MemDevice, dst: &MemDevice) {
        let n = src.num_blocks();
        dst.allocate(n).unwrap();
        let mut block = crate::zeroed_block();
        for i in 0..n {
            src.read_block(i, &mut block).unwrap();
            dst.write_block(i, &block).unwrap();
        }
    }
}
