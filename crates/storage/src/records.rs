//! Append-only record file over a block device.
//!
//! This is the paper's object file: "the spatial objects are stored in a
//! plain text file and the leaf nodes of the tree data structures store
//! pointers to the object locations in the file". A [`RecordPtr`] is such a
//! pointer (a byte offset); loading the object it points to costs one
//! random block access plus however many sequential accesses the record's
//! remaining blocks need — which is how the paper's "average # disk blocks
//! per object" (Table 1) enters the measurements.
//!
//! Layout: records are packed back to back; each record is an 8-byte
//! header — a 4-byte little-endian length followed by a CRC32 of the
//! payload — then the payload itself. The checksum is verified on every
//! [`get`](RecordFile::get) and [`scan`](RecordFile::scan), so a torn or
//! bit-flipped record surfaces as [`StorageError::Corrupt`] instead of
//! silently wrong object data. A header never straddles a block boundary
//! (the writer pads with zero bytes instead), so a reader can always parse
//! it from the first block it fetches. A zero length marks padding, which
//! is unambiguous because empty records are rejected.

use parking_lot::Mutex;

use crate::page::crc32;
use crate::{BlockDevice, BlockId, Result, StorageError, BLOCK_SIZE};

/// Per-record header: length (u32 LE) + CRC32 of the payload (u32 LE).
pub const RECORD_HEADER_LEN: usize = 8;
const LEN_PREFIX: usize = RECORD_HEADER_LEN;

/// Pointer to a record: its byte offset in the record file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordPtr(pub u64);

impl RecordPtr {
    /// Encodes the pointer for storage inside index entries.
    pub fn to_le_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Decodes a pointer written by [`RecordPtr::to_le_bytes`].
    pub fn from_le_bytes(b: [u8; 8]) -> Self {
        Self(u64::from_le_bytes(b))
    }
}

struct Tail {
    /// Logical length of the file in bytes (including the in-memory tail).
    len: u64,
    /// Bytes past the last full block, not yet durable.
    tail: Vec<u8>,
    /// Block backing the current partial tail, if one was already allocated
    /// by an earlier flush.
    tail_block: Option<BlockId>,
    /// True when the in-memory tail has bytes not yet written to the device.
    tail_dirty: bool,
    records: u64,
}

/// Append-only record store.
///
/// Appends are buffered per block; full blocks are written immediately, the
/// partial tail on [`flush`](RecordFile::flush) (reads flush on demand, so
/// readers never observe a torn record).
///
/// ```
/// use ir2_storage::{MemDevice, RecordFile};
/// let file = RecordFile::create(MemDevice::new());
/// let ptr = file.append(b"hello spatial world")?;
/// assert_eq!(file.get(ptr)?, b"hello spatial world");
/// # Ok::<(), ir2_storage::StorageError>(())
/// ```
pub struct RecordFile<D> {
    dev: D,
    state: Mutex<Tail>,
}

impl<D: BlockDevice> RecordFile<D> {
    /// Creates an empty record file on a fresh device region.
    ///
    /// The file owns the device from block 0; callers that share a device
    /// should give the record file its own.
    pub fn create(dev: D) -> Self {
        Self {
            dev,
            state: Mutex::new(Tail {
                len: 0,
                tail: Vec::with_capacity(BLOCK_SIZE),
                tail_block: None,
                tail_dirty: false,
                records: 0,
            }),
        }
    }

    /// Reopens a record file previously persisted with
    /// [`flush`](RecordFile::flush): `len` is the logical byte length and
    /// `records` the record count, both obtained from
    /// [`state`](RecordFile::state) at save time (callers persist them in
    /// their own superblock).
    pub fn open(dev: D, len: u64, records: u64) -> Result<Self> {
        if len > dev.num_blocks() * BLOCK_SIZE as u64 {
            return Err(StorageError::Corrupt(format!(
                "record file length {len} exceeds device size"
            )));
        }
        // Rehydrate the partial tail so appends can continue.
        let tail_bytes = (len % BLOCK_SIZE as u64) as usize;
        let (tail, tail_block) = if tail_bytes > 0 {
            let block_id = len / BLOCK_SIZE as u64;
            let mut buf = crate::zeroed_block();
            dev.read_block(block_id, &mut buf)?;
            (buf[..tail_bytes].to_vec(), Some(block_id))
        } else {
            (Vec::with_capacity(BLOCK_SIZE), None)
        };
        Ok(Self {
            dev,
            state: Mutex::new(Tail {
                len,
                tail,
                tail_block,
                tail_dirty: false,
                records,
            }),
        })
    }

    /// `(logical_len_bytes, record_count)` — the superblock fields needed by
    /// [`open`](RecordFile::open).
    pub fn state(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.len, s.records)
    }

    /// Number of records appended.
    pub fn num_records(&self) -> u64 {
        self.state.lock().records
    }

    /// Logical file size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.state.lock().len
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Appends a record, returning its pointer.
    ///
    /// Returns [`StorageError::Corrupt`] for empty records (a zero length is
    /// reserved as the padding marker).
    pub fn append(&self, data: &[u8]) -> Result<RecordPtr> {
        if data.is_empty() {
            return Err(StorageError::Corrupt("empty record".into()));
        }
        if data.len() > u32::MAX as usize {
            return Err(StorageError::Corrupt("record exceeds 4 GiB".into()));
        }
        let mut s = self.state.lock();

        // Keep the length prefix inside one block: pad to the next boundary
        // if fewer than 4 bytes remain in the current block.
        let in_block = (s.len % BLOCK_SIZE as u64) as usize;
        if in_block != 0 && BLOCK_SIZE - in_block < LEN_PREFIX {
            let pad = BLOCK_SIZE - in_block;
            s.tail_dirty = true;
            s.tail.extend(std::iter::repeat_n(0u8, pad));
            s.len += pad as u64;
            self.drain_full_blocks(&mut s)?;
        }

        let ptr = RecordPtr(s.len);
        s.tail_dirty = true;
        s.tail.extend_from_slice(&(data.len() as u32).to_le_bytes());
        s.tail.extend_from_slice(&crc32(data).to_le_bytes());
        s.tail.extend_from_slice(data);
        s.len += (LEN_PREFIX + data.len()) as u64;
        s.records += 1;
        self.drain_full_blocks(&mut s)?;
        Ok(ptr)
    }

    /// Writes every full block buffered in the tail.
    fn drain_full_blocks(&self, s: &mut Tail) -> Result<()> {
        while s.tail.len() >= BLOCK_SIZE {
            let block_id = match s.tail_block.take() {
                Some(id) => id,
                None => self.dev.allocate(1)?,
            };
            let chunk: &[u8; BLOCK_SIZE] = s.tail[..BLOCK_SIZE].try_into().expect("full block");
            self.dev.write_block(block_id, chunk)?;
            s.tail.drain(..BLOCK_SIZE);
        }
        Ok(())
    }

    /// Makes the partial tail durable. Idempotent.
    pub fn flush(&self) -> Result<()> {
        let mut s = self.state.lock();
        self.flush_locked(&mut s)
    }

    fn flush_locked(&self, s: &mut Tail) -> Result<()> {
        if s.tail.is_empty() || !s.tail_dirty {
            return Ok(());
        }
        let block_id = match s.tail_block {
            Some(id) => id,
            None => {
                let id = self.dev.allocate(1)?;
                s.tail_block = Some(id);
                id
            }
        };
        let mut block = [0u8; BLOCK_SIZE];
        block[..s.tail.len()].copy_from_slice(&s.tail);
        self.dev.write_block(block_id, &block)?;
        s.tail_dirty = false;
        Ok(())
    }

    /// Loads the record at `ptr`.
    ///
    /// Costs `ceil(record_end/4096) - floor(ptr/4096)` block accesses: one
    /// random, the rest sequential.
    pub fn get(&self, ptr: RecordPtr) -> Result<Vec<u8>> {
        // Ensure every byte of the file is durable before reading blocks:
        // a record may begin in the durable region yet end inside the tail.
        {
            let mut s = self.state.lock();
            self.flush_locked(&mut s)?;
            if ptr.0 + LEN_PREFIX as u64 > s.len {
                return Err(StorageError::Corrupt(format!(
                    "record pointer {ptr:?} beyond end of file ({})",
                    s.len
                )));
            }
        }

        let first_block = ptr.0 / BLOCK_SIZE as u64;
        let off = (ptr.0 % BLOCK_SIZE as u64) as usize;
        let mut block = crate::zeroed_block();
        self.dev.read_block(first_block, &mut block)?;

        let len = u32::from_le_bytes(block[off..off + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(block[off + 4..off + 8].try_into().expect("4 bytes"));
        if len == 0 {
            return Err(StorageError::Corrupt(format!(
                "record pointer {ptr:?} points at padding"
            )));
        }
        if ptr.0 + (LEN_PREFIX + len) as u64 > self.state.lock().len {
            return Err(StorageError::Corrupt(format!(
                "record at {ptr:?} claims length {len} beyond end of file"
            )));
        }

        let mut out = Vec::with_capacity(len);
        let avail = BLOCK_SIZE - off - LEN_PREFIX;
        out.extend_from_slice(&block[off + LEN_PREFIX..off + LEN_PREFIX + avail.min(len)]);
        let mut next_block = first_block + 1;
        while out.len() < len {
            self.dev.read_block(next_block, &mut block)?;
            let take = (len - out.len()).min(BLOCK_SIZE);
            out.extend_from_slice(&block[..take]);
            next_block += 1;
        }
        if crc32(&out) != stored_crc {
            return Err(StorageError::Corrupt(format!(
                "record at {ptr:?} failed its checksum"
            )));
        }
        Ok(out)
    }

    /// Number of blocks the record at `ptr` spans (the paper's per-object
    /// block cost), without reading the payload blocks.
    pub fn record_blocks(&self, ptr: RecordPtr) -> Result<u32> {
        let data = self.get(ptr)?; // small helper used in tests/reports only
        let end = ptr.0 + (LEN_PREFIX + data.len()) as u64;
        Ok((end.div_ceil(BLOCK_SIZE as u64) - ptr.0 / BLOCK_SIZE as u64) as u32)
    }

    /// Sequentially scans every record, invoking `f(ptr, payload)`.
    ///
    /// Used for index construction; with a tracked device this produces the
    /// expected 1 random + N−1 sequential access pattern.
    pub fn scan(&self, mut f: impl FnMut(RecordPtr, &[u8]) -> Result<()>) -> Result<()> {
        self.flush()?;
        let len = self.state.lock().len;
        let mut block = crate::zeroed_block();
        let mut loaded_block: Option<u64> = None;
        let mut pos: u64 = 0;
        let mut payload = Vec::new();

        while pos + LEN_PREFIX as u64 <= len {
            let block_id = pos / BLOCK_SIZE as u64;
            let off = (pos % BLOCK_SIZE as u64) as usize;
            // Padding rule: a length prefix never straddles blocks.
            if BLOCK_SIZE - off < LEN_PREFIX {
                pos = (block_id + 1) * BLOCK_SIZE as u64;
                continue;
            }
            if loaded_block != Some(block_id) {
                self.dev.read_block(block_id, &mut block)?;
                loaded_block = Some(block_id);
            }
            let rec_len =
                u32::from_le_bytes(block[off..off + 4].try_into().expect("4 bytes")) as usize;
            let rec_crc = u32::from_le_bytes(block[off + 4..off + 8].try_into().expect("4 bytes"));
            if rec_len == 0 {
                // Padding: skip to the next block boundary.
                pos = (block_id + 1) * BLOCK_SIZE as u64;
                continue;
            }
            let ptr = RecordPtr(pos);
            payload.clear();
            payload.reserve(rec_len);
            let mut cursor = pos + LEN_PREFIX as u64;
            while payload.len() < rec_len {
                let b = cursor / BLOCK_SIZE as u64;
                let o = (cursor % BLOCK_SIZE as u64) as usize;
                if loaded_block != Some(b) {
                    self.dev.read_block(b, &mut block)?;
                    loaded_block = Some(b);
                }
                let take = (rec_len - payload.len()).min(BLOCK_SIZE - o);
                payload.extend_from_slice(&block[o..o + take]);
                cursor += take as u64;
            }
            if crc32(&payload) != rec_crc {
                return Err(StorageError::Corrupt(format!(
                    "record at {ptr:?} failed its checksum"
                )));
            }
            f(ptr, &payload)?;
            pos = cursor;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDevice, TrackedDevice};

    #[test]
    fn append_get_roundtrip() {
        let rf = RecordFile::create(MemDevice::new());
        let a = rf.append(b"hello").unwrap();
        let b = rf.append(b"world, this is a longer record").unwrap();
        assert_eq!(rf.get(a).unwrap(), b"hello");
        assert_eq!(rf.get(b).unwrap(), b"world, this is a longer record");
        assert_eq!(rf.num_records(), 2);
    }

    #[test]
    fn rejects_empty_records() {
        let rf = RecordFile::create(MemDevice::new());
        assert!(rf.append(b"").is_err());
    }

    #[test]
    fn records_spanning_blocks() {
        let rf = RecordFile::create(MemDevice::new());
        let big = vec![0x42u8; 3 * BLOCK_SIZE + 17];
        let small = b"tiny".to_vec();
        let p1 = rf.append(&big).unwrap();
        let p2 = rf.append(&small).unwrap();
        assert_eq!(rf.get(p1).unwrap(), big);
        assert_eq!(rf.get(p2).unwrap(), small);
        assert_eq!(rf.record_blocks(p1).unwrap(), 4);
    }

    #[test]
    fn header_never_straddles_blocks() {
        let rf = RecordFile::create(MemDevice::new());
        // Leave exactly 3 bytes free in the first block:
        // 8 (header) + payload = BLOCK_SIZE - 3  =>  payload = BLOCK_SIZE - 11.
        let filler = vec![1u8; BLOCK_SIZE - 11];
        rf.append(&filler).unwrap();
        let p = rf.append(b"next").unwrap();
        // The pointer must have been pushed to the block boundary.
        assert_eq!(p.0 % BLOCK_SIZE as u64, 0);
        assert_eq!(rf.get(p).unwrap(), b"next");
    }

    #[test]
    fn get_costs_one_random_plus_sequential() {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let rf = RecordFile::create(tracked);
        let big = vec![7u8; 2 * BLOCK_SIZE];
        let p = rf.append(&big).unwrap();
        rf.flush().unwrap();
        stats.reset();

        rf.get(p).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.seq_reads, 2);
        assert_eq!(s.random_writes + s.seq_writes, 0);
    }

    #[test]
    fn scan_visits_all_records_in_order() {
        let rf = RecordFile::create(MemDevice::new());
        let mut expected = Vec::new();
        for i in 0..200u32 {
            let data = vec![i as u8; (i as usize % 700) + 1];
            let ptr = rf.append(&data).unwrap();
            expected.push((ptr, data));
        }
        let mut seen = Vec::new();
        rf.scan(|ptr, data| {
            seen.push((ptr, data.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, expected);
    }

    #[test]
    fn reopen_continues_appending() {
        let dev = std::sync::Arc::new(MemDevice::new());
        let (p1, state) = {
            let rf = RecordFile::create(std::sync::Arc::clone(&dev));
            let p1 = rf.append(b"persisted").unwrap();
            rf.flush().unwrap();
            (p1, rf.state())
        };
        let rf = RecordFile::open(std::sync::Arc::clone(&dev), state.0, state.1).unwrap();
        assert_eq!(rf.get(p1).unwrap(), b"persisted");
        let p2 = rf.append(b"appended after reopen").unwrap();
        assert_eq!(rf.get(p2).unwrap(), b"appended after reopen");
        assert_eq!(rf.num_records(), 2);
        // Original record still intact.
        assert_eq!(rf.get(p1).unwrap(), b"persisted");
    }

    #[test]
    fn flipped_byte_fails_get_and_scan() {
        let dev = std::sync::Arc::new(MemDevice::new());
        let rf = RecordFile::create(std::sync::Arc::clone(&dev));
        let p = rf.append(&vec![0x5Au8; 600]).unwrap();
        rf.flush().unwrap();
        // Garble one payload byte on the device, past the header.
        let mut block = crate::zeroed_block();
        dev.read_block(0, &mut block).unwrap();
        block[100] ^= 0x08;
        dev.write_block(0, &block).unwrap();
        assert!(matches!(rf.get(p), Err(StorageError::Corrupt(_))));
        assert!(matches!(
            rf.scan(|_, _| Ok(())),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn get_detects_bad_pointers() {
        let rf = RecordFile::create(MemDevice::new());
        rf.append(b"only").unwrap();
        assert!(rf.get(RecordPtr(9999)).is_err());
        // Pointer into the middle of a record: length bytes will be garbage
        // or padding; either way it must not panic.
        let _ = rf.get(RecordPtr(2));
    }
}
