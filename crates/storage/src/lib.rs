#![warn(missing_docs)]
//! Disk substrate for the IR²-Tree reproduction.
//!
//! The paper's evaluation (Section VI) is entirely I/O-centric: all four
//! index structures (R-Tree, IR²-Tree, MIR²-Tree, inverted index) and the
//! object file are *disk resident*, block size is 4096 bytes, and the
//! figures report **random** vs **sequential** disk block accesses, with
//! execution time "primarily proportional to the random access numbers".
//! This crate provides exactly that substrate:
//!
//! * [`BlockDevice`] — the 4096-byte block abstraction, with a volatile
//!   in-memory implementation ([`MemDevice`]) for deterministic experiments
//!   and a durable file-backed one ([`FileDevice`]).
//! * [`TrackedDevice`] — a transparent wrapper that classifies each block
//!   access as sequential (block id = previously accessed id + 1) or random
//!   and accumulates them in a shared [`IoStats`].
//! * [`CostModel`] — converts an I/O count delta into simulated disk time,
//!   calibrated by default to the paper's hardware class (a 10 000 RPM
//!   drive, circa 2004).
//! * [`BufferPool`] — an LRU block cache layered over any device; the paper
//!   runs uncached, so experiments use capacity 0, and the buffer-pool
//!   ablation (`A2` in `DESIGN.md`) sweeps the capacity.
//! * [`extent`] — multi-block node I/O (IR²/MIR² nodes "occupy two or more
//!   disk blocks"; reading one costs 1 random + (n−1) sequential accesses).
//! * [`RecordFile`] — the append-only record store used as the paper's
//!   "plain text file" of objects that leaf entries point into.
//! * [`MetricsRegistry`] — lock-free named counters/histograms with
//!   snapshot/delta and Prometheus-style export, generalizing the
//!   [`IoStats`]/[`IoScope`] accounting for the layers above.
//! * [`RetryDevice`] — transparent retries with jittered exponential
//!   backoff for transient faults ([`StorageError::is_transient`]) and a
//!   per-block circuit breaker that quarantines persistently failing
//!   blocks ([`StorageError::Quarantined`]).
//! * [`DecodedCache`] — a sharded LRU of *decoded* objects above the page
//!   layer (warm node visits skip checksum verification and
//!   deserialization), invalidated wholesale by a mutation epoch bumped at
//!   commit points.

mod cost;
mod decoded;
mod device;
mod error;
pub mod extent;
pub mod metrics;
pub mod page;
mod pool;
mod records;
mod retry;
mod shadow;
pub mod testing;
mod tracking;

pub use cost::CostModel;
pub use decoded::{DecodedCache, DEFAULT_DECODED_SHARDS};
pub use device::{copy_blocks, diff_blocks, BlockDevice, FileDevice, MemDevice};
pub use error::{IoOp, Result, StorageError};
pub use metrics::{
    ratio, Counter, Histogram, HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use page::{PAGE_PAYLOAD, PAGE_TRAILER_LEN, PAGE_VERSION};
pub use pool::{BufferPool, DEFAULT_POOL_SHARDS};
pub use records::{RecordFile, RecordPtr, RECORD_HEADER_LEN};
pub use retry::{RetryDevice, RetryPolicy, RetryScope, RetryStats};
pub use shadow::ShadowPair;
pub use tracking::{IoScope, IoSnapshot, IoStats, ScopedIo, TrackedDevice};

/// Disk block size in bytes.
///
/// The paper states "the disk block size is 4,096 KB", an evident typo for
/// 4096 *bytes*: a 113-entry R-Tree node only fits a 4 KiB block.
pub const BLOCK_SIZE: usize = 4096;

/// Identifier of a disk block: its ordinal position on the device.
pub type BlockId = u64;

/// A freshly zeroed block-sized buffer.
#[inline]
pub fn zeroed_block() -> Box<[u8; BLOCK_SIZE]> {
    // `vec!` avoids a large stack temporary.
    vec![0u8; BLOCK_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact length")
}
