//! Fault-injection test doubles.
//!
//! Real disks fail; a database library must surface those failures as
//! errors, never panics or silent corruption. Two injectors live here (in
//! the library, not `#[cfg(test)]`, so downstream crates' tests can use
//! them too):
//!
//! * [`FlakyDevice`] wraps one device and injects faults in one of three
//!   modes: a hard budget cutoff (every op after the first `budget` fails
//!   permanently — exercising every error path), and two *intermittent*
//!   modes (every k-th op, or each op with probability `p` from a seeded
//!   RNG) that inject **transient** errors a retry layer is expected to
//!   absorb.
//! * [`CrashPoint`] / [`TornWriteDevice`] simulate a *crash*: at a chosen
//!   global I/O index the in-flight write is torn (truncated or garbled)
//!   and every subsequent operation fails, as if the machine lost power.
//!   One `CrashPoint` can wrap several devices that share the operation
//!   counter, so a whole database's I/O stream has a single crash index —
//!   the basis of the crash-point sweep harness.
//! * [`KillSwitch`] / [`KillableDevice`] model a *replica death*: the
//!   switch wraps all of one replica's devices, and when pulled (or when
//!   an armed operation index is reached) every subsequent operation fails
//!   **permanently** — the failure mode replica failover exists to absorb.
//! * [`StallDevice`] models a *slow* device rather than a broken one: each
//!   operation independently sleeps with a seeded probability, producing
//!   the stalls that hedged reads cut.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::{BlockDevice, BlockId, Result, StorageError, BLOCK_SIZE};

/// How a [`FlakyDevice`] decides which operations fail.
enum FaultMode {
    /// Every operation after the first `budget` fails *permanently*.
    Budget(AtomicU64),
    /// Every `period`-th operation (the `period`-th, `2·period`-th, …)
    /// fails with a *transient* error.
    EveryKth { period: u64, ops: AtomicU64 },
    /// Each operation fails with probability `p`, drawn from a seeded
    /// SplitMix64 stream, with a *transient* error.
    Probability { p: f64, state: AtomicU64 },
}

/// A fault-injecting device wrapper; see the module docs for the modes.
pub struct FlakyDevice<D> {
    inner: D,
    mode: FaultMode,
    injected: AtomicU64,
}

/// One SplitMix64 output for a given stream position.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<D: BlockDevice> FlakyDevice<D> {
    /// Wraps `inner`; the first `budget` read/write/allocate calls succeed,
    /// everything after fails with a **permanent** [`StorageError::Io`].
    pub fn new(inner: D, budget: u64) -> Self {
        Self {
            inner,
            mode: FaultMode::Budget(AtomicU64::new(budget)),
            injected: AtomicU64::new(0),
        }
    }

    /// Wraps `inner`; every `period`-th operation fails with a
    /// **transient** error (`ErrorKind::Interrupted`). The failed
    /// operation does not reach the inner device, so an immediate retry
    /// lands on a fresh count and succeeds — the deterministic
    /// recoverable-fault workload. `period` must be ≥ 1; `period == 1`
    /// fails every operation.
    pub fn every_kth(inner: D, period: u64) -> Self {
        assert!(period >= 1, "period must be at least 1");
        Self {
            inner,
            mode: FaultMode::EveryKth {
                period,
                ops: AtomicU64::new(0),
            },
            injected: AtomicU64::new(0),
        }
    }

    /// Wraps `inner`; each operation independently fails with probability
    /// `p` (a **transient** error), drawn from a SplitMix64 stream seeded
    /// with `seed` — the same seed replays the same fault pattern for a
    /// serial workload.
    pub fn with_probability(inner: D, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
        Self {
            inner,
            mode: FaultMode::Probability {
                p,
                state: AtomicU64::new(seed),
            },
            injected: AtomicU64::new(0),
        }
    }

    /// Restores `budget` further successful operations (budget mode only;
    /// a no-op for the intermittent modes).
    pub fn refill(&self, budget: u64) {
        if let FaultMode::Budget(remaining) = &self.mode {
            remaining.store(budget, Ordering::Relaxed);
        }
    }

    /// Operations left before failures begin. Intermittent modes never
    /// run out, so they report `u64::MAX`.
    pub fn remaining(&self) -> u64 {
        match &self.mode {
            FaultMode::Budget(remaining) => remaining.load(Ordering::Relaxed),
            _ => u64::MAX,
        }
    }

    /// Total faults injected so far, across all modes.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn transient() -> StorageError {
        StorageError::Io {
            op: crate::IoOp::Other,
            block: None,
            source: std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient fault",
            ),
        }
    }

    fn spend(&self) -> Result<()> {
        let fail = match &self.mode {
            FaultMode::Budget(remaining) => {
                // Decrement-if-positive; at zero, fail permanently.
                let mut cur = remaining.load(Ordering::Relaxed);
                loop {
                    if cur == 0 {
                        self.injected.fetch_add(1, Ordering::Relaxed);
                        return Err(StorageError::Io {
                            op: crate::IoOp::Other,
                            block: None,
                            source: std::io::Error::other("injected device failure"),
                        });
                    }
                    match remaining.compare_exchange_weak(
                        cur,
                        cur - 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Ok(()),
                        Err(seen) => cur = seen,
                    }
                }
            }
            FaultMode::EveryKth { period, ops } => {
                let n = ops.fetch_add(1, Ordering::Relaxed) + 1;
                n % period == 0
            }
            FaultMode::Probability { p, state } => {
                let pos = state.fetch_add(1, Ordering::Relaxed);
                // Top 53 bits → a uniform double in [0, 1).
                let u = (splitmix64(pos) >> 11) as f64 / (1u64 << 53) as f64;
                u < *p
            }
        };
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(Self::transient());
        }
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for FlakyDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.spend()?;
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.spend()?;
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.spend()?;
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

/// How the in-flight write is damaged when the crash point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornWrite {
    /// Only the first half of the block reaches the disk; the rest keeps
    /// its previous contents.
    Truncated,
    /// The block lands whole but with a burst of flipped bits.
    Garbled,
}

struct CrashState {
    next_op: AtomicU64,
    crash_at: u64,
    mode: TornWrite,
    dead: AtomicBool,
}

/// A simulated power-cut shared by any number of [`TornWriteDevice`]s.
///
/// Counts read/write/allocate operations across every wrapped device; the
/// operation with global index `crash_at` (0-based) is the crash: if it is
/// a write, a torn version of the block reaches the inner device, then the
/// operation — and all later ones — fail with [`StorageError::Io`].
pub struct CrashPoint {
    state: Arc<CrashState>,
}

impl CrashPoint {
    /// A crash at global operation index `crash_at`; `u64::MAX` never
    /// crashes (useful for counting a workload's operations).
    pub fn new(crash_at: u64, mode: TornWrite) -> Self {
        Self {
            state: Arc::new(CrashState {
                next_op: AtomicU64::new(0),
                crash_at,
                mode,
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// Wraps a device; all wrappers from one `CrashPoint` share the
    /// operation counter and die together.
    pub fn wrap<D: BlockDevice>(&self, inner: D) -> TornWriteDevice<D> {
        TornWriteDevice {
            inner,
            state: Arc::clone(&self.state),
        }
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.next_op.load(Ordering::Relaxed)
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.dead.load(Ordering::Relaxed)
    }
}

/// A device wrapped by a [`CrashPoint`]; see there.
pub struct TornWriteDevice<D> {
    inner: D,
    state: Arc<CrashState>,
}

impl<D: BlockDevice> TornWriteDevice<D> {
    fn injected() -> StorageError {
        StorageError::Io {
            op: crate::IoOp::Other,
            block: None,
            source: std::io::Error::other("injected crash"),
        }
    }

    /// `Ok(true)` means "this operation is the crash"; `Err` means the
    /// device already died.
    fn step(&self) -> Result<bool> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(Self::injected());
        }
        let n = self.state.next_op.fetch_add(1, Ordering::Relaxed);
        if n >= self.state.crash_at {
            self.state.dead.store(true, Ordering::Relaxed);
            if n == self.state.crash_at {
                return Ok(true);
            }
            return Err(Self::injected());
        }
        Ok(false)
    }
}

impl<D: BlockDevice> BlockDevice for TornWriteDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        if self.step()? {
            return Err(Self::injected());
        }
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        if self.step()? {
            // The crash lands mid-write: a damaged version of the block
            // reaches the platter before the error is reported.
            let mut torn = *data;
            match self.state.mode {
                TornWrite::Truncated => {
                    let mut old = [0u8; BLOCK_SIZE];
                    if self.inner.read_block(id, &mut old).is_ok() {
                        torn[BLOCK_SIZE / 2..].copy_from_slice(&old[BLOCK_SIZE / 2..]);
                    } else {
                        torn[BLOCK_SIZE / 2..].fill(0);
                    }
                }
                TornWrite::Garbled => {
                    for b in &mut torn[256..272] {
                        *b ^= 0xA5;
                    }
                }
            }
            let _ = self.inner.write_block(id, &torn);
            return Err(Self::injected());
        }
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        if self.step()? {
            return Err(Self::injected());
        }
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(Self::injected());
        }
        self.inner.sync()
    }
}

struct KillState {
    ops: AtomicU64,
    kill_at: AtomicU64,
    dead: AtomicBool,
}

/// A remote kill switch for a replica's devices.
///
/// One `KillSwitch` wraps any number of devices (typically the six devices
/// of one replica's [`DeviceSet`]); they share an operation counter and die
/// together, like [`CrashPoint`] — but the death is commanded, not fixed at
/// construction: [`kill`](KillSwitch::kill) fails every operation from now
/// on, [`kill_after`](KillSwitch::kill_after) arms a death at a chosen
/// global operation index (a "crash point" for replica-failover sweeps).
/// Errors are **permanent** (`StorageError::Io`, not transient), so a retry
/// layer gives up immediately and the failure surfaces to the replica
/// router.
#[derive(Clone)]
pub struct KillSwitch {
    state: Arc<KillState>,
}

impl Default for KillSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl KillSwitch {
    /// A switch that is alive until told otherwise.
    pub fn new() -> Self {
        Self {
            state: Arc::new(KillState {
                ops: AtomicU64::new(0),
                kill_at: AtomicU64::new(u64::MAX),
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// Wraps a device; all wrappers from one switch share the operation
    /// counter and die together.
    pub fn wrap<D: BlockDevice>(&self, inner: D) -> KillableDevice<D> {
        KillableDevice {
            inner,
            state: Arc::clone(&self.state),
        }
    }

    /// Kills every wrapped device immediately.
    pub fn kill(&self) {
        self.state.dead.store(true, Ordering::Relaxed);
    }

    /// Arms a death at global operation index `n` (0-based): the `n`-th
    /// and every later operation fail.
    pub fn kill_after(&self, n: u64) {
        self.state.kill_at.store(n, Ordering::Relaxed);
    }

    /// Whether the switch has fired (or was killed directly).
    pub fn killed(&self) -> bool {
        self.state.dead.load(Ordering::Relaxed)
    }

    /// Operations observed so far across all wrapped devices.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::Relaxed)
    }
}

/// A device wrapped by a [`KillSwitch`]; see there. `Clone` shares both
/// the inner device handle and the switch, so a cloned replica set keeps
/// answering to the same switch.
#[derive(Clone)]
pub struct KillableDevice<D> {
    inner: D,
    state: Arc<KillState>,
}

impl<D: BlockDevice> KillableDevice<D> {
    fn check(&self) -> Result<()> {
        let n = self.state.ops.fetch_add(1, Ordering::Relaxed);
        if self.state.dead.load(Ordering::Relaxed)
            || n >= self.state.kill_at.load(Ordering::Relaxed)
        {
            self.state.dead.store(true, Ordering::Relaxed);
            return Err(StorageError::Io {
                op: crate::IoOp::Other,
                block: None,
                source: std::io::Error::other("replica killed"),
            });
        }
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for KillableDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.check()?;
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.check()?;
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.check()?;
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(StorageError::Io {
                op: crate::IoOp::Other,
                block: None,
                source: std::io::Error::other("replica killed"),
            });
        }
        self.inner.sync()
    }
}

/// A device that intermittently *stalls* instead of failing: each
/// operation independently sleeps for `stall` with probability `p`, drawn
/// from a seeded SplitMix64 stream. Results are always correct — this
/// models a slow disk (or a deep queue) rather than a broken one, the
/// workload hedged reads exist to cut. `Clone` shares the stream position,
/// so clones of one `StallDevice` continue the same fault pattern.
#[derive(Clone)]
pub struct StallDevice<D> {
    inner: D,
    p: f64,
    stall: std::time::Duration,
    state: Arc<AtomicU64>,
    stalls: Arc<AtomicU64>,
}

impl<D: BlockDevice> StallDevice<D> {
    /// Wraps `inner`; each operation stalls for `stall` with probability
    /// `p`, from a stream seeded with `seed` (distinct seeds give replicas
    /// independent stall patterns).
    pub fn new(inner: D, p: f64, stall: std::time::Duration, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
        Self {
            inner,
            p,
            stall,
            state: Arc::new(AtomicU64::new(seed)),
            stalls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total stalls injected so far.
    pub fn stalls_injected(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    fn maybe_stall(&self) {
        let pos = self.state.fetch_add(1, Ordering::Relaxed);
        let u = (splitmix64(pos) >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.p {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.stall);
        }
    }
}

impl<D: BlockDevice> BlockDevice for StallDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.maybe_stall();
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.maybe_stall();
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.maybe_stall();
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn fails_exactly_after_budget() {
        let dev = FlakyDevice::new(MemDevice::new(), 3);
        dev.allocate(4).unwrap(); // 1
        let buf = crate::zeroed_block();
        dev.write_block(0, &buf).unwrap(); // 2
        let mut out = crate::zeroed_block();
        dev.read_block(0, &mut out).unwrap(); // 3
        let err = dev.read_block(0, &mut out).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }));
        assert!(!err.is_transient(), "budget cutoff is permanent");
        assert_eq!(dev.remaining(), 0);
        assert_eq!(dev.faults_injected(), 1);
    }

    #[test]
    fn every_kth_fails_transiently_and_recovers() {
        let dev = FlakyDevice::every_kth(MemDevice::new(), 3);
        dev.allocate(1).unwrap(); // op 1
        let mut out = crate::zeroed_block();
        dev.read_block(0, &mut out).unwrap(); // op 2
        let err = dev.read_block(0, &mut out).unwrap_err(); // op 3: fault
        assert!(err.is_transient(), "{err}");
        // The very next attempt (op 4) succeeds: the fault is recoverable.
        dev.read_block(0, &mut out).unwrap();
        assert_eq!(dev.faults_injected(), 1);
        assert_eq!(dev.remaining(), u64::MAX);
    }

    #[test]
    fn probability_mode_is_seeded_and_transient() {
        let run = |seed| {
            let dev = FlakyDevice::with_probability(MemDevice::new(), 0.5, seed);
            dev.allocate(1).unwrap_or(0);
            let mut out = crate::zeroed_block();
            let pattern: Vec<bool> = (0..64)
                .map(|_| dev.read_block(0, &mut out).is_ok())
                .collect();
            (pattern, dev.faults_injected())
        };
        let (a, faults_a) = run(42);
        let (b, _) = run(42);
        assert_eq!(a, b, "same seed must replay the same fault pattern");
        let (c, _) = run(7);
        assert_ne!(a, c, "different seeds should differ");
        assert!(
            faults_a > 10 && faults_a < 55,
            "p=0.5 over 65 ops: {faults_a}"
        );

        let dev = FlakyDevice::with_probability(MemDevice::new(), 1.0, 0);
        let err = dev.allocate(1).unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn refill_restores_service() {
        let dev = FlakyDevice::new(MemDevice::new(), 1);
        dev.allocate(1).unwrap();
        let mut out = crate::zeroed_block();
        assert!(dev.read_block(0, &mut out).is_err());
        dev.refill(2);
        assert!(dev.read_block(0, &mut out).is_ok());
    }

    #[test]
    fn crash_tears_the_write_then_kills_the_device() {
        let mem = Arc::new(MemDevice::new());
        mem.allocate(1).unwrap();
        mem.write_block(0, &[0xFFu8; BLOCK_SIZE]).unwrap();

        // Op 0 is the write: it must land truncated and fail.
        let cp = CrashPoint::new(0, TornWrite::Truncated);
        let dev = cp.wrap(Arc::clone(&mem));
        assert!(dev.write_block(0, &[0x11u8; BLOCK_SIZE]).is_err());
        assert!(cp.crashed());
        let mut out = crate::zeroed_block();
        assert!(dev.read_block(0, &mut out).is_err(), "device is dead");
        assert!(dev.sync().is_err(), "sync after the crash fails too");

        mem.read_block(0, &mut out).unwrap();
        assert!(out[..BLOCK_SIZE / 2].iter().all(|&b| b == 0x11));
        assert!(out[BLOCK_SIZE / 2..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn garble_mode_flips_a_burst() {
        let mem = Arc::new(MemDevice::new());
        mem.allocate(1).unwrap();
        let cp = CrashPoint::new(0, TornWrite::Garbled);
        let dev = cp.wrap(Arc::clone(&mem));
        assert!(dev.write_block(0, &[0u8; BLOCK_SIZE]).is_err());
        let mut out = crate::zeroed_block();
        mem.read_block(0, &mut out).unwrap();
        assert!(out[256..272].iter().all(|&b| b == 0xA5));
        assert!(out[..256].iter().all(|&b| b == 0));
    }

    #[test]
    fn wrappers_share_one_op_counter() {
        let cp = CrashPoint::new(2, TornWrite::Garbled);
        let a = cp.wrap(MemDevice::new());
        let b = cp.wrap(MemDevice::new());
        a.allocate(1).unwrap(); // op 0
        b.allocate(1).unwrap(); // op 1
        assert!(a.allocate(1).is_err()); // op 2: crash
        assert!(b.allocate(1).is_err()); // dead: rejected without counting
        assert_eq!(cp.ops(), 3);
    }

    #[test]
    fn max_crash_index_never_fires() {
        let cp = CrashPoint::new(u64::MAX, TornWrite::Garbled);
        let dev = cp.wrap(MemDevice::new());
        dev.allocate(8).unwrap();
        for i in 0..8 {
            dev.write_block(i, &[i as u8; BLOCK_SIZE]).unwrap();
        }
        assert!(!cp.crashed());
        assert_eq!(cp.ops(), 9);
    }

    #[test]
    fn kill_switch_is_alive_until_pulled() {
        let ks = KillSwitch::new();
        let dev = ks.wrap(MemDevice::new());
        dev.allocate(2).unwrap();
        dev.write_block(0, &[7u8; BLOCK_SIZE]).unwrap();
        assert!(!ks.killed());
        ks.kill();
        assert!(ks.killed());
        let mut buf = crate::zeroed_block();
        let err = dev.read_block(0, &mut buf).unwrap_err();
        assert!(!err.is_transient(), "kill must be permanent: {err}");
        assert!(dev.sync().is_err());
        assert!(dev.write_block(1, &[0u8; BLOCK_SIZE]).is_err());
    }

    #[test]
    fn kill_after_fires_at_the_armed_op_and_spans_wrappers() {
        let ks = KillSwitch::new();
        let a = ks.wrap(MemDevice::new());
        let b = ks.wrap(MemDevice::new());
        ks.kill_after(2);
        a.allocate(1).unwrap(); // op 0
        b.allocate(1).unwrap(); // op 1
        assert!(a.allocate(1).is_err()); // op 2: dead from here on
        assert!(b.allocate(1).is_err());
        assert!(ks.killed());
    }

    #[test]
    fn kill_switch_clone_shares_fate() {
        let ks = KillSwitch::new();
        let dev = ks.wrap(Arc::new(MemDevice::new()));
        let twin = dev.clone();
        dev.allocate(1).unwrap();
        ks.kill();
        assert!(twin.allocate(1).is_err());
    }

    #[test]
    fn stall_device_is_transparent_and_counts_stalls() {
        let mem = MemDevice::new();
        // p = 1: every op stalls (for a nanoscopic duration) and is counted.
        let dev = StallDevice::new(mem, 1.0, std::time::Duration::from_nanos(1), 7);
        dev.allocate(2).unwrap();
        dev.write_block(0, &[3u8; BLOCK_SIZE]).unwrap();
        let mut buf = crate::zeroed_block();
        dev.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
        assert_eq!(dev.stalls_injected(), 3);
        // p = 0: never stalls.
        let calm = StallDevice::new(MemDevice::new(), 0.0, std::time::Duration::from_secs(1), 7);
        calm.allocate(1).unwrap();
        assert_eq!(calm.stalls_injected(), 0);
    }
}
