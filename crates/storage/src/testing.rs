//! Fault-injection test double.
//!
//! Real disks fail; a database library must surface those failures as
//! errors, never panics or silent corruption. [`FlakyDevice`] wraps any
//! device and starts failing I/O after a configurable number of
//! operations, letting every layer's error path be exercised determin-
//! istically. It lives in the library (not `#[cfg(test)]`) so downstream
//! crates' tests can use it too.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{BlockDevice, BlockId, Result, StorageError, BLOCK_SIZE};

/// A device that fails every operation after the first `budget` calls.
pub struct FlakyDevice<D> {
    inner: D,
    remaining: AtomicU64,
}

impl<D: BlockDevice> FlakyDevice<D> {
    /// Wraps `inner`; the first `budget` read/write/allocate calls succeed,
    /// everything after fails with [`StorageError::Io`].
    pub fn new(inner: D, budget: u64) -> Self {
        Self {
            inner,
            remaining: AtomicU64::new(budget),
        }
    }

    /// Restores `budget` further successful operations.
    pub fn refill(&self, budget: u64) {
        self.remaining.store(budget, Ordering::Relaxed);
    }

    /// Operations left before failures begin.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    fn spend(&self) -> Result<()> {
        // Decrement-if-positive; at zero, fail.
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return Err(StorageError::Io(std::io::Error::other(
                    "injected device failure",
                )));
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl<D: BlockDevice> BlockDevice for FlakyDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        self.spend()?;
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.spend()?;
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.spend()?;
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDevice;

    #[test]
    fn fails_exactly_after_budget() {
        let dev = FlakyDevice::new(MemDevice::new(), 3);
        dev.allocate(4).unwrap(); // 1
        let buf = crate::zeroed_block();
        dev.write_block(0, &buf).unwrap(); // 2
        let mut out = crate::zeroed_block();
        dev.read_block(0, &mut out).unwrap(); // 3
        assert!(matches!(
            dev.read_block(0, &mut out),
            Err(StorageError::Io(_))
        ));
        assert_eq!(dev.remaining(), 0);
    }

    #[test]
    fn refill_restores_service() {
        let dev = FlakyDevice::new(MemDevice::new(), 1);
        dev.allocate(1).unwrap();
        let mut out = crate::zeroed_block();
        assert!(dev.read_block(0, &mut out).is_err());
        dev.refill(2);
        assert!(dev.read_block(0, &mut out).is_ok());
    }
}
