//! The IIO algorithm (paper Figure 7).

use std::collections::BinaryHeap;

use ir2_geo::OrderedF64;
use ir2_model::{DistanceFirstQuery, ExecOutcome, ObjectSource, QueryLimits, SpatialObject};
use ir2_storage::{BlockDevice, Result, StorageError};
use ir2_text::Vocabulary;

use crate::index::intersect_sorted;
use crate::InvertedIndex;

/// Answers a distance-first top-k spatial keyword query with the Inverted
/// Index Only baseline — the paper's `IIOTopK(I, Q)`:
///
/// 1. retrieve the postings list `Lᵢ` of every keyword `wᵢ ∈ Q.t`;
/// 2. intersect the lists into the candidate set `V`;
/// 3. load every object in `V` and compute its distance to `Q.p`;
/// 4. sort by distance and return the first `Q.k`.
///
/// IIO is the one non-incremental algorithm in the paper: it computes the
/// *entire* result set, so "its performance is independent of k". A keyword
/// absent from the vocabulary empties the intersection, and the query
/// returns no results.
///
/// Results are `(object, distance)` in ascending distance, ties broken by
/// object id — the canonical `(distance, id)` order every engine in the
/// workspace shares.
pub fn iio_topk<const N: usize, D: BlockDevice>(
    index: &InvertedIndex<D>,
    vocab: &Vocabulary,
    objects: &impl ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
) -> Result<Vec<(SpatialObject<N>, f64)>> {
    iio_topk_limited(index, vocab, objects, query, QueryLimits::none())
        .map(ExecOutcome::into_results)
}

/// [`iio_topk`] under execution limits. IIO is non-incremental — nothing
/// is rank-ordered until the whole candidate set has been scanned — so it
/// degrades *all-or-nothing*: a tripped limit yields
/// [`ExecOutcome::Truncated`] with an **empty** result set (trivially a
/// prefix of the full answer; partial candidates would not be the true
/// top-m). Charged I/O is one unit per postings list retrieved plus one
/// per candidate object loaded; the frontier cap meters the bounded top-k
/// heap, which never exceeds `k + 1`.
pub fn iio_topk_limited<const N: usize, D: BlockDevice>(
    index: &InvertedIndex<D>,
    vocab: &Vocabulary,
    objects: &impl ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
) -> Result<ExecOutcome<Vec<(SpatialObject<N>, f64)>>> {
    if query.keywords.is_empty() {
        // IIO has no spatial access path: with no keywords the candidate set
        // is the whole database, which this baseline cannot enumerate.
        return Err(StorageError::Corrupt(
            "IIO requires at least one query keyword (use a tree algorithm for pure NN)".into(),
        ));
    }
    if query.k == 0 {
        return Ok(ExecOutcome::Complete(Vec::new()));
    }

    let mut io_used: u64 = 0;

    // Lines 1-3: retrieve and intersect the postings lists (one charged
    // I/O unit per list).
    let mut lists = Vec::with_capacity(query.keywords.len());
    for w in &query.keywords {
        if let Some(reason) = limits.check(io_used, 0) {
            return Ok(ExecOutcome::Truncated {
                reason,
                results_so_far: Vec::new(),
            });
        }
        match vocab.term_id(w) {
            Some(t) => {
                io_used += 1;
                lists.push(index.postings(t)?);
            }
            // A keyword occurring nowhere: the conjunction is empty.
            None => return Ok(ExecOutcome::Complete(Vec::new())),
        }
    }
    let candidates = intersect_sorted(lists);

    // Lines 4-9: load candidates, keep the k nearest in a bounded max-heap
    // (objects are retained so line 10 needs no second disk pass).
    let mut heap: BinaryHeap<(OrderedF64, u64)> = BinaryHeap::with_capacity(query.k + 1);
    let mut kept: std::collections::HashMap<u64, SpatialObject<N>> =
        std::collections::HashMap::new();
    for ptr in candidates {
        if let Some(reason) = limits.check(io_used, heap.len()) {
            return Ok(ExecOutcome::Truncated {
                reason,
                results_so_far: Vec::new(),
            });
        }
        io_used += 1;
        let obj = objects.load(ptr)?;
        let d = obj.point.distance(&query.point);
        // Canonical `(distance, id)` tie order: keying the bounded heap by
        // record pointer made the tied tail at the k boundary diverge from
        // the tree engines (append order is not id order).
        let id = obj.id;
        kept.insert(id, obj);
        heap.push((OrderedF64(d), id));
        if heap.len() > query.k {
            if let Some((_, evicted)) = heap.pop() {
                kept.remove(&evicted);
            }
        }
    }

    // Line 10: ascending by distance (ties by id for determinism).
    let mut picked: Vec<(OrderedF64, u64)> = heap.into_vec();
    picked.sort_by_key(|&(d, id)| (d, id));
    Ok(ExecOutcome::Complete(
        picked
            .into_iter()
            .map(|(d, id)| {
                (
                    kept.remove(&id).expect("kept object for every heap entry"),
                    d.0,
                )
            })
            .collect(),
    ))
}

/// A convenience wrapper returning only `(object id, distance)` pairs.
pub fn iio_topk_ids<const N: usize, D: BlockDevice>(
    index: &InvertedIndex<D>,
    vocab: &Vocabulary,
    objects: &impl ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
) -> Result<Vec<(u64, f64)>> {
    Ok(iio_topk(index, vocab, objects, query)?
        .into_iter()
        .map(|(o, d)| (o.id, d))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_model::{ObjPtr, ObjectStore};
    use ir2_storage::MemDevice;
    use ir2_text::{tokenize, TermId};

    /// Builds the paper's Figure 1 hotel dataset.
    fn figure1() -> (
        ObjectStore<2, MemDevice>,
        InvertedIndex<MemDevice>,
        Vocabulary,
    ) {
        let rows: [(f64, f64, &str); 8] = [
            (
                25.4,
                -80.1,
                "Hotel A tennis court, gift shop, spa, Internet",
            ),
            (47.3, -122.2, "Hotel B wireless Internet, pool, golf course"),
            (35.5, 139.4, "Hotel C spa, continental suites, pool"),
            (39.5, 116.2, "Hotel D sauna, pool, conference rooms"),
            (51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"),
            (40.4, -73.5, "Hotel F safe box, concierge, internet, pets"),
            (
                -33.2,
                -70.4,
                "Hotel G Internet, airport transportation, pool",
            ),
            (-41.1, 174.4, "Hotel H wake up service, no pets, pool"),
        ];
        let store = ObjectStore::<2, _>::create(MemDevice::new());
        let mut vocab = Vocabulary::new();
        let mut docs: Vec<(ObjPtr, Vec<TermId>)> = Vec::new();
        for (i, (lat, lon, text)) in rows.iter().enumerate() {
            let obj = SpatialObject::new(i as u64 + 1, [*lat, *lon], *text);
            let ptr = store.append(&obj).unwrap();
            let mut terms: Vec<String> = tokenize(text).collect();
            terms.sort_unstable();
            terms.dedup();
            vocab.add_document(terms.iter().map(String::as_str));
            docs.push((
                ptr,
                terms.iter().map(|t| vocab.term_id(t).unwrap()).collect(),
            ));
        }
        store.flush().unwrap();
        let idx = InvertedIndex::build(MemDevice::new(), &vocab, docs).unwrap();
        (store, idx, vocab)
    }

    #[test]
    fn example_2_trace() {
        // "top-2 hotels from [30.5, 100.0] containing internet and pool"
        // returns H7 (181.9) then H2 (222.8).
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
        let res = iio_topk(&idx, &vocab, &store, &q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].0.id, 7);
        assert!((res[0].1 - 181.9).abs() < 0.05);
        assert_eq!(res[1].0.id, 2);
        assert!((res[1].1 - 222.8).abs() < 0.05);
    }

    #[test]
    fn k_larger_than_matches_returns_all() {
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::new([0.0, 0.0], &["internet", "pool"], 10);
        let res = iio_topk(&idx, &vocab, &store, &q).unwrap();
        assert_eq!(res.len(), 2, "only H2 and H7 contain both keywords");
    }

    #[test]
    fn absent_keyword_empties_the_result() {
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::new([0.0, 0.0], &["internet", "casino"], 5);
        assert!(iio_topk(&idx, &vocab, &store, &q).unwrap().is_empty());
    }

    #[test]
    fn single_keyword_sorted_by_distance() {
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::new([30.5, 100.0], &["pool"], 8);
        let res = iio_topk(&idx, &vocab, &store, &q).unwrap();
        // pool: H2, H3, H4, H7, H8 — sorted by distance from [30.5, 100.0].
        let ids: Vec<u64> = res.iter().map(|(o, _)| o.id).collect();
        assert_eq!(ids, vec![4, 3, 8, 7, 2]);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_keywords_is_an_error() {
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::<2>::new([0.0, 0.0], &[] as &[&str], 3);
        assert!(iio_topk(&idx, &vocab, &store, &q).is_err());
    }

    #[test]
    fn k_zero_returns_nothing_without_io() {
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::new([0.0, 0.0], &["pool"], 0);
        assert!(iio_topk(&idx, &vocab, &store, &q).unwrap().is_empty());
    }

    #[test]
    fn limited_run_is_all_or_nothing() {
        let (store, idx, vocab) = figure1();
        let q = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
        // Full cost: 2 postings lists + 2 candidate loads = 4 units.
        for budget in 0..4 {
            let out = iio_topk_limited(
                &idx,
                &vocab,
                &store,
                &q,
                QueryLimits::none().with_io_budget(budget),
            )
            .unwrap();
            assert!(out.is_truncated(), "budget {budget} must truncate");
            assert!(
                out.results().is_empty(),
                "IIO degrades all-or-nothing: truncation yields no results"
            );
        }
        let out = iio_topk_limited(
            &idx,
            &vocab,
            &store,
            &q,
            QueryLimits::none().with_io_budget(4),
        )
        .unwrap();
        assert!(!out.is_truncated(), "full budget completes");
        assert_eq!(out.results().len(), 2);
    }
}
