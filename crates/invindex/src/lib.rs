#![warn(missing_docs)]
//! The inverted index and the IIO (Inverted Index Only) baseline.
//!
//! The paper's second baseline algorithm (Section 5.1, Figure 7) answers a
//! distance-first top-k spatial keyword query with text-only access paths:
//! fetch the postings list of every query keyword from a disk-resident
//! inverted index, intersect them, load every object in the intersection,
//! compute its distance to the query point, sort, and return the first `k`.
//!
//! Its signature behaviours — reproduced by the experiments — follow
//! directly from this shape: IIO is **insensitive to k** (it computes the
//! whole result set regardless), it deteriorates when keywords are common
//! (long lists, many object loads), and it wins only "in the rare case
//! where every query keyword appears in very few objects".
//!
//! [`InvertedIndex`] stores one postings record (sorted object pointers)
//! per term on its own block device via
//! [`RecordFile`](ir2_storage::RecordFile), with the dictionary
//! (term → record pointer) in memory, as Table 2 sizes suggest the paper
//! did. [`iio_topk`] is Figure 7 verbatim.

mod iio;
mod index;

pub use iio::{iio_topk, iio_topk_ids, iio_topk_limited};
pub use index::InvertedIndex;
