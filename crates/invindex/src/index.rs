//! Disk-resident inverted index.

use ir2_model::ObjPtr;
use ir2_storage::{BlockDevice, RecordFile, RecordPtr, Result, StorageError};
use ir2_text::{TermId, Vocabulary};

/// A disk-resident inverted index: term → sorted list of object pointers.
///
/// Postings are packed back to back in a [`RecordFile`] on the index's own
/// device; retrieving a term's list costs one random block access plus
/// sequential ones for long lists (the paper's
/// `I.RetrieveObjectPointersList(wᵢ)`). The dictionary — term id → record
/// pointer and list length — lives in memory and its serialized size is
/// included in [`size_bytes`](InvertedIndex::size_bytes) so Table 2 is
/// comparable.
pub struct InvertedIndex<D> {
    postings: RecordFile<D>,
    /// Indexed by `TermId`; `None` for interned terms with no postings.
    dict: Vec<Option<(RecordPtr, u32)>>,
    dict_bytes: u64,
}

impl<D: BlockDevice> InvertedIndex<D> {
    /// Builds the index over `(object pointer, distinct term ids)` pairs on
    /// a fresh device. The `vocab` must already contain every term id that
    /// appears.
    ///
    /// Postings within each list are sorted by object pointer (file order),
    /// enabling linear-time merging and galloping intersection.
    pub fn build(
        dev: D,
        vocab: &Vocabulary,
        docs: impl IntoIterator<Item = (ObjPtr, Vec<TermId>)>,
    ) -> Result<Self> {
        // Accumulate lists in memory, then lay them out term by term.
        let mut lists: Vec<Vec<u64>> = vec![Vec::new(); vocab.len()];
        for (ptr, terms) in docs {
            for t in terms {
                let slot = lists.get_mut(t.0 as usize).ok_or_else(|| {
                    StorageError::Corrupt(format!("term id {} outside vocabulary", t.0))
                })?;
                slot.push(ptr.0);
            }
        }
        let postings = RecordFile::create(dev);
        let mut dict = Vec::with_capacity(lists.len());
        for mut list in lists {
            if list.is_empty() {
                dict.push(None);
                continue;
            }
            list.sort_unstable();
            list.dedup();
            let mut bytes = Vec::with_capacity(list.len() * 8);
            for p in &list {
                bytes.extend_from_slice(&p.to_le_bytes());
            }
            let rec = postings.append(&bytes)?;
            dict.push(Some((rec, list.len() as u32)));
        }
        postings.flush()?;
        let dict_bytes = Self::dict_encoded_len(vocab, &dict);
        Ok(Self {
            postings,
            dict,
            dict_bytes,
        })
    }

    fn dict_encoded_len(vocab: &Vocabulary, dict: &[Option<(RecordPtr, u32)>]) -> u64 {
        // term string + record pointer + length per populated entry.
        vocab
            .iter()
            .zip(dict.iter())
            .map(|((_, name, _), slot)| {
                if slot.is_some() {
                    name.len() as u64 + 12
                } else {
                    0
                }
            })
            .sum()
    }

    /// Serializes the dictionary (for the database superblock).
    pub fn encode_dictionary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.dict.len() * 13 + 12);
        let (len, records) = self.postings.state();
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(records as u32).to_le_bytes());
        out.extend_from_slice(&(self.dict.len() as u32).to_le_bytes());
        for slot in &self.dict {
            match slot {
                Some((ptr, n)) => {
                    out.push(1);
                    out.extend_from_slice(&ptr.to_le_bytes());
                    out.extend_from_slice(&n.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Reopens an index from its device and a dictionary written by
    /// [`encode_dictionary`](InvertedIndex::encode_dictionary).
    pub fn open(dev: D, vocab: &Vocabulary, dict_buf: &[u8]) -> Result<Self> {
        let corrupt = |msg: &str| StorageError::Corrupt(format!("inverted dictionary: {msg}"));
        if dict_buf.len() < 16 {
            return Err(corrupt("truncated header"));
        }
        let len = u64::from_le_bytes(dict_buf[..8].try_into().expect("8 bytes"));
        let records = u32::from_le_bytes(dict_buf[8..12].try_into().expect("4 bytes")) as u64;
        let count = u32::from_le_bytes(dict_buf[12..16].try_into().expect("4 bytes")) as usize;
        let mut dict = Vec::with_capacity(count);
        let mut pos = 16;
        for _ in 0..count {
            let tag = *dict_buf
                .get(pos)
                .ok_or_else(|| corrupt("truncated entry"))?;
            pos += 1;
            if tag == 0 {
                dict.push(None);
                continue;
            }
            let end = pos + 12;
            let slice = dict_buf
                .get(pos..end)
                .ok_or_else(|| corrupt("truncated entry"))?;
            let ptr = RecordPtr::from_le_bytes(slice[..8].try_into().expect("8 bytes"));
            let n = u32::from_le_bytes(slice[8..12].try_into().expect("4 bytes"));
            dict.push(Some((ptr, n)));
            pos = end;
        }
        let postings = RecordFile::open(dev, len, records)?;
        let dict_bytes = Self::dict_encoded_len(vocab, &dict);
        Ok(Self {
            postings,
            dict,
            dict_bytes,
        })
    }

    /// Document frequency of a term id (0 when absent).
    pub fn df(&self, term: TermId) -> u32 {
        self.dict
            .get(term.0 as usize)
            .and_then(|s| s.map(|(_, n)| n))
            .unwrap_or(0)
    }

    /// Retrieves the postings list of `term` (sorted object pointers) —
    /// the paper's `RetrieveObjectPointersList`. Empty when the term has no
    /// postings.
    pub fn postings(&self, term: TermId) -> Result<Vec<ObjPtr>> {
        let Some(Some((rec, n))) = self.dict.get(term.0 as usize) else {
            return Ok(Vec::new());
        };
        let bytes = self.postings.get(*rec)?;
        if bytes.len() != *n as usize * 8 {
            return Err(StorageError::Corrupt(format!(
                "postings record length {} does not match df {n}",
                bytes.len()
            )));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| RecordPtr(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    /// Total index footprint in bytes: postings region plus dictionary —
    /// the IIO column of Table 2.
    pub fn size_bytes(&self) -> u64 {
        self.postings.device().size_bytes() + self.dict_bytes
    }

    /// The index's block device (for I/O statistics).
    pub fn device(&self) -> &D {
        self.postings.device()
    }
}

/// Intersects sorted pointer lists, smallest first, using galloping search —
/// linear in the smallest list for skewed inputs.
pub(crate) fn intersect_sorted(mut lists: Vec<Vec<ObjPtr>>) -> Vec<ObjPtr> {
    if lists.is_empty() {
        return Vec::new();
    }
    lists.sort_by_key(Vec::len);
    let mut acc = lists[0].clone();
    for list in &lists[1..] {
        if acc.is_empty() {
            break;
        }
        let mut out = Vec::with_capacity(acc.len());
        let mut lo = 0usize;
        for &x in &acc {
            // Gallop to find x in list[lo..].
            let mut step = 1;
            let mut hi = lo;
            while hi < list.len() && list[hi] < x {
                lo = hi + 1;
                hi += step;
                step *= 2;
            }
            let hi = hi.min(list.len());
            let idx = lo + list[lo..hi].partition_point(|&y| y < x);
            if idx < list.len() && list[idx] == x {
                out.push(x);
                lo = idx + 1;
            } else {
                lo = idx;
            }
            if lo >= list.len() {
                break;
            }
        }
        acc = out;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_storage::MemDevice;

    fn vocab_for(docs: &[&[&str]]) -> Vocabulary {
        let mut v = Vocabulary::new();
        for d in docs {
            v.add_document(d.iter().copied());
        }
        v
    }

    fn build_index(docs: &[&[&str]]) -> (InvertedIndex<MemDevice>, Vocabulary) {
        let vocab = vocab_for(docs);
        let entries: Vec<(ObjPtr, Vec<TermId>)> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                (
                    RecordPtr(i as u64 * 100),
                    d.iter().map(|t| vocab.term_id(t).unwrap()).collect(),
                )
            })
            .collect();
        let idx = InvertedIndex::build(MemDevice::new(), &vocab, entries).unwrap();
        (idx, vocab)
    }

    #[test]
    fn postings_match_documents() {
        let docs: &[&[&str]] = &[
            &["internet", "pool"],
            &["pool", "spa"],
            &["internet"],
            &["golf"],
        ];
        let (idx, vocab) = build_index(docs);
        let pool = idx.postings(vocab.term_id("pool").unwrap()).unwrap();
        assert_eq!(pool, vec![RecordPtr(0), RecordPtr(100)]);
        let internet = idx.postings(vocab.term_id("internet").unwrap()).unwrap();
        assert_eq!(internet, vec![RecordPtr(0), RecordPtr(200)]);
        assert_eq!(idx.df(vocab.term_id("golf").unwrap()), 1);
    }

    #[test]
    fn intersection_example_2() {
        // Example 2 of the paper: internet ∩ pool over Figure 1.
        let internet = vec![RecordPtr(1), RecordPtr(2), RecordPtr(6), RecordPtr(7)];
        let pool = vec![
            RecordPtr(2),
            RecordPtr(3),
            RecordPtr(4),
            RecordPtr(7),
            RecordPtr(8),
        ];
        let both = intersect_sorted(vec![internet, pool]);
        assert_eq!(both, vec![RecordPtr(2), RecordPtr(7)]); // H2, H7
    }

    #[test]
    fn intersection_edge_cases() {
        assert!(intersect_sorted(vec![]).is_empty());
        assert!(intersect_sorted(vec![vec![], vec![RecordPtr(1)]]).is_empty());
        let single = intersect_sorted(vec![vec![RecordPtr(5), RecordPtr(9)]]);
        assert_eq!(single, vec![RecordPtr(5), RecordPtr(9)]);
        // Three-way.
        let a = vec![RecordPtr(1), RecordPtr(3), RecordPtr(5), RecordPtr(7)];
        let b = vec![RecordPtr(3), RecordPtr(5), RecordPtr(7), RecordPtr(9)];
        let c = vec![RecordPtr(5), RecordPtr(7), RecordPtr(11)];
        assert_eq!(
            intersect_sorted(vec![a, b, c]),
            vec![RecordPtr(5), RecordPtr(7)]
        );
    }

    #[test]
    fn unknown_terms_have_empty_postings() {
        let (idx, vocab) = build_index(&[&["alpha"]]);
        // A term id outside the dictionary.
        assert!(idx.postings(TermId(999)).unwrap().is_empty());
        assert_eq!(idx.df(TermId(999)), 0);
        let _ = vocab;
    }

    #[test]
    fn dictionary_roundtrip() {
        let docs: &[&[&str]] = &[&["internet", "pool"], &["pool"], &["spa", "pool"]];
        let dev = std::sync::Arc::new(MemDevice::new());
        let vocab = vocab_for(docs);
        let entries: Vec<(ObjPtr, Vec<TermId>)> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                (
                    RecordPtr(i as u64),
                    d.iter().map(|t| vocab.term_id(t).unwrap()).collect(),
                )
            })
            .collect();
        let dict = {
            let idx = InvertedIndex::build(std::sync::Arc::clone(&dev), &vocab, entries).unwrap();
            idx.encode_dictionary()
        };
        let idx = InvertedIndex::open(dev, &vocab, &dict).unwrap();
        let pool = idx.postings(vocab.term_id("pool").unwrap()).unwrap();
        assert_eq!(pool.len(), 3);
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn open_rejects_corrupt_dictionary() {
        let (idx, vocab) = build_index(&[&["a", "b"]]);
        let dict = idx.encode_dictionary();
        assert!(InvertedIndex::open(MemDevice::new(), &vocab, &dict[..dict.len() - 2]).is_err());
        assert!(InvertedIndex::open(MemDevice::new(), &vocab, &[1, 2]).is_err());
    }
}
