//! Property tests: the disk-resident inverted index and IIO against
//! brute-force models on random corpora.

use ir2_invindex::{iio_topk, InvertedIndex};
use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2_storage::MemDevice;
use ir2_text::{tokenize, TermId, Vocabulary};
use proptest::prelude::*;
use std::sync::Arc;

const WORDS: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

#[derive(Debug, Clone)]
struct Doc {
    point: [f64; 2],
    words: Vec<usize>,
}

fn arb_docs() -> impl Strategy<Value = Vec<Doc>> {
    prop::collection::vec(
        (
            prop::array::uniform2(-50.0f64..50.0),
            prop::collection::vec(0..WORDS.len(), 0..6),
        )
            .prop_map(|(point, words)| Doc { point, words }),
        1..60,
    )
}

struct Fixture {
    store: Arc<ObjectStore<2, MemDevice>>,
    index: InvertedIndex<MemDevice>,
    vocab: Vocabulary,
    objs: Vec<SpatialObject<2>>,
    ptrs: Vec<ObjPtr>,
}

fn build(docs: &[Doc]) -> Fixture {
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let mut vocab = Vocabulary::new();
    let mut entries: Vec<(ObjPtr, Vec<TermId>)> = Vec::new();
    let mut objs = Vec::new();
    let mut ptrs = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        let text = d
            .words
            .iter()
            .map(|&w| WORDS[w])
            .collect::<Vec<_>>()
            .join(" ");
        let obj = SpatialObject::new(i as u64, d.point, text);
        let ptr = store.append(&obj).unwrap();
        let mut terms: Vec<String> = tokenize(&obj.text).collect();
        terms.sort_unstable();
        terms.dedup();
        vocab.add_document(terms.iter().map(String::as_str));
        entries.push((
            ptr,
            terms.iter().map(|t| vocab.term_id(t).unwrap()).collect(),
        ));
        objs.push(obj);
        ptrs.push(ptr);
    }
    store.flush().unwrap();
    let index = InvertedIndex::build(MemDevice::new(), &vocab, entries).unwrap();
    Fixture {
        store,
        index,
        vocab,
        objs,
        ptrs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every term's postings list is exactly the set of documents
    /// containing it, sorted by pointer, and df matches.
    #[test]
    fn postings_match_documents(docs in arb_docs()) {
        let f = build(&docs);
        for w in WORDS {
            let Some(t) = f.vocab.term_id(w) else { continue };
            let got = f.index.postings(t).unwrap();
            let want: Vec<ObjPtr> = f
                .objs
                .iter()
                .zip(&f.ptrs)
                .filter(|(o, _)| o.token_set().contains(w))
                .map(|(_, p)| *p)
                .collect();
            prop_assert_eq!(&got, &want, "term {}", w);
            prop_assert_eq!(f.index.df(t) as usize, want.len());
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    /// IIO equals brute force for any conjunctive query.
    #[test]
    fn iio_equals_brute_force(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..4),
        k in 1usize..10,
    ) {
        let f = build(&docs);
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, k);
        let got = iio_topk(&f.index, &f.vocab, f.store.as_ref(), &q).unwrap();

        let mut want: Vec<(u64, f64)> = f
            .objs
            .iter()
            .filter(|o| o.token_set().contains_all(&q.keywords))
            .map(|o| (o.id, o.point.distance(&q.point)))
            .collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(k);

        prop_assert_eq!(got.len(), want.len());
        for ((o, d), (wid, wd)) in got.iter().zip(want.iter()) {
            prop_assert!((d - wd).abs() < 1e-9);
            // Ties may permute ids; both must satisfy the filter.
            prop_assert!(o.token_set().contains_all(&q.keywords));
            let _ = wid;
        }
    }

    /// The dictionary round-trips through serialization.
    #[test]
    fn dictionary_roundtrip(docs in arb_docs()) {
        let dev = Arc::new(MemDevice::new());
        let f = {
            let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
            let mut vocab = Vocabulary::new();
            let mut entries: Vec<(ObjPtr, Vec<TermId>)> = Vec::new();
            for (i, d) in docs.iter().enumerate() {
                let text = d.words.iter().map(|&w| WORDS[w]).collect::<Vec<_>>().join(" ");
                let obj = SpatialObject::<2>::new(i as u64, d.point, text);
                let ptr = store.append(&obj).unwrap();
                let mut terms: Vec<String> = tokenize(&obj.text).collect();
                terms.sort_unstable();
                terms.dedup();
                vocab.add_document(terms.iter().map(String::as_str));
                entries.push((ptr, terms.iter().map(|t| vocab.term_id(t).unwrap()).collect()));
            }
            let index = InvertedIndex::build(Arc::clone(&dev), &vocab, entries).unwrap();
            (index.encode_dictionary(), vocab)
        };
        let (dict, vocab) = f;
        let reopened = InvertedIndex::open(Arc::clone(&dev), &vocab, &dict).unwrap();
        for (t, _, df) in vocab.iter() {
            prop_assert_eq!(reopened.df(t), df);
            prop_assert_eq!(reopened.postings(t).unwrap().len() as u32, df);
        }
    }
}
