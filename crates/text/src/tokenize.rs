//! Tokenization and token-set containment.

use std::collections::{HashMap, HashSet};

/// Splits `text` into lower-cased alphanumeric tokens.
///
/// "wireless Internet, pool" tokenizes to `wireless`, `internet`, `pool` —
/// matching the paper's running example, where the query keyword
/// `internet` matches both "Internet" (H₁, H₇) and "internet" (H₆).
/// Unicode alphanumerics are kept; everything else separates tokens.
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(|s| s.to_lowercase())
}

/// The set of distinct tokens of a document.
///
/// This is the structure the distance-first algorithms consult to verify
/// candidates: "if T.t contains all keywords in Q.t".
///
/// ```
/// use ir2_text::TokenSet;
/// let doc = TokenSet::from_text("wireless Internet, pool, golf course");
/// assert!(doc.contains_all(&["internet", "pool"]));
/// assert!(!doc.contains_all(&["internet", "spa"]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenSet {
    tokens: HashSet<String>,
}

impl TokenSet {
    /// Tokenizes a document into its distinct-token set.
    pub fn from_text(text: &str) -> Self {
        Self {
            tokens: tokenize(text).collect(),
        }
    }

    /// Number of distinct tokens (the document length `dl` used by the
    /// paper's IR-score upper bound).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// True if the document contains keyword `w` (`w` must already be
    /// lower-cased, as produced by [`tokenize`]).
    pub fn contains(&self, w: &str) -> bool {
        self.tokens.contains(w)
    }

    /// The paper's conjunctive Boolean keyword predicate:
    /// `∀w ∈ keywords : w ∈ T.t`. Vacuously true for no keywords.
    pub fn contains_all<S: AsRef<str>>(&self, keywords: &[S]) -> bool {
        keywords.iter().all(|w| self.contains(w.as_ref()))
    }

    /// Iterates over the distinct tokens.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.tokens.iter().map(String::as_str)
    }
}

/// Distinct tokens of a document with their term frequencies.
///
/// The general top-k algorithm needs `tf` per query term and the document
/// length; this is the loaded-object view it scores against.
#[derive(Debug, Clone, Default)]
pub struct TokenCounts {
    counts: HashMap<String, u32>,
}

impl TokenCounts {
    /// Tokenizes a document, counting occurrences per token.
    pub fn from_text(text: &str) -> Self {
        let mut counts = HashMap::new();
        for tok in tokenize(text) {
            *counts.entry(tok).or_insert(0) += 1;
        }
        Self { counts }
    }

    /// Term frequency of `w` (0 when absent; `w` must be lower-cased).
    pub fn tf(&self, w: &str) -> u32 {
        self.counts.get(w).copied().unwrap_or(0)
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(token, tf)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(t, &c)| (t.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_amenities() {
        let toks: Vec<String> = tokenize("wireless Internet, pool, golf course").collect();
        assert_eq!(toks, ["wireless", "internet", "pool", "golf", "course"]);
    }

    #[test]
    fn case_insensitive_match_from_running_example() {
        // H7's description uses "Internet"; the query keyword is "internet".
        let h7 = TokenSet::from_text("Internet, airport transportation, pool");
        assert!(h7.contains_all(&["internet", "pool"]));
        // H1 has internet but no pool.
        let h1 = TokenSet::from_text("tennis court, gift shop, spa, Internet");
        assert!(!h1.contains_all(&["internet", "pool"]));
    }

    #[test]
    fn empty_and_punctuation_only_text() {
        assert!(TokenSet::from_text("").is_empty());
        assert!(TokenSet::from_text("...!?---").is_empty());
        assert_eq!(tokenize("").count(), 0);
    }

    #[test]
    fn empty_keyword_list_is_vacuously_true() {
        let t = TokenSet::from_text("anything");
        assert!(t.contains_all::<&str>(&[]));
    }

    #[test]
    fn counts_term_frequencies() {
        let c = TokenCounts::from_text("pool spa pool POOL spa pets");
        assert_eq!(c.tf("pool"), 3);
        assert_eq!(c.tf("spa"), 2);
        assert_eq!(c.tf("pets"), 1);
        assert_eq!(c.tf("absent"), 0);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn numbers_and_unicode_are_tokens() {
        let toks: Vec<String> = tokenize("Motel6 café 24h").collect();
        assert_eq!(toks, ["motel6", "café", "24h"]);
    }
}
