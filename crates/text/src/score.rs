//! IR relevance scoring: `IRscore(T.t, Q.t)` and its signature-derived
//! upper bound.

use crate::{TermId, TokenCounts, Vocabulary};

/// An IR relevance function over (document, query-term-set) pairs, together
/// with the **sound upper bound** the IR²-Tree's general algorithm needs.
///
/// Section 5.3 orders the priority queue by
/// `Upper(v) = UpperBound_{T∈v}( f(distance, IRscore) )`, obtained by
/// imagining an object that contains every query keyword matched by the
/// node's signature. For that to be correct (no result emitted before a
/// better one), `upper_bound(matched)` must dominate `score(...)` of every
/// document whose matched-term set is a subset of `matched` — the contract
/// documented (and property-tested) here.
pub trait IrScorer: Send + Sync {
    /// Relevance of a loaded document to the query terms.
    ///
    /// `query` are the distinct query term ids (terms absent from the
    /// vocabulary contribute nothing and are filtered by the caller).
    fn score(&self, vocab: &Vocabulary, query: &[TermId], doc: &TokenCounts) -> f64;

    /// Maximum possible relevance of any document whose query-term matches
    /// are a subset of `matched` (the query terms whose signatures the node
    /// signature contains).
    fn upper_bound(&self, vocab: &Vocabulary, matched: &[TermId]) -> f64;
}

/// tf-idf with saturating term frequency: `Σ_t idf(t) · tf/(1 + tf)`.
///
/// This is tf-idf in the style of [Sin01]/BM25 with the tf component
/// saturating at 1 (`k₁ = 1`, no length normalization). The saturation is
/// what makes the paper's "imaginary object with tf = 1" construction a
/// *sound* bound: each matched term contributes at most `idf(t) · 1`, and a
/// node's signature-matched term set is a superset of every descendant
/// document's (signatures have no false negatives). The paper's literal
/// `1 + ln(tf)` with `1/dl` normalization is not a sound bound (a short
/// document matching one high-idf term can outscore the bound); `DESIGN.md`
/// records this substitution.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaturatingTfIdf;

impl IrScorer for SaturatingTfIdf {
    fn score(&self, vocab: &Vocabulary, query: &[TermId], doc: &TokenCounts) -> f64 {
        let mut acc = 0.0;
        for &t in query {
            let tf = doc.tf(vocab.name(t)) as f64;
            if tf > 0.0 {
                acc += vocab.idf(t) * tf / (1.0 + tf);
            }
        }
        acc
    }

    fn upper_bound(&self, vocab: &Vocabulary, matched: &[TermId]) -> f64 {
        matched.iter().map(|&t| vocab.idf(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.add_document(["internet", "pool", "spa"]);
        v.add_document(["pool", "pets", "sauna"]);
        v.add_document(["pool", "internet"]);
        v.add_document(["golf"]);
        v
    }

    fn q(v: &Vocabulary, terms: &[&str]) -> Vec<TermId> {
        terms.iter().filter_map(|t| v.term_id(t)).collect()
    }

    #[test]
    fn more_matches_score_higher() {
        let v = corpus();
        let query = q(&v, &["internet", "pool"]);
        let s = SaturatingTfIdf;
        let both = s.score(&v, &query, &TokenCounts::from_text("internet pool"));
        let one = s.score(&v, &query, &TokenCounts::from_text("pool only here"));
        let none = s.score(&v, &query, &TokenCounts::from_text("golf sauna"));
        assert!(both > one);
        assert!(one > none);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn rare_terms_dominate_common_ones() {
        let v = corpus();
        let s = SaturatingTfIdf;
        // "internet" (df=2) is rarer than "pool" (df=3).
        let query = q(&v, &["internet", "pool"]);
        let rare = s.score(&v, &query, &TokenCounts::from_text("internet"));
        let common = s.score(&v, &query, &TokenCounts::from_text("pool"));
        assert!(rare > common);
    }

    #[test]
    fn tf_saturates_below_idf() {
        let v = corpus();
        let s = SaturatingTfIdf;
        let query = q(&v, &["pool"]);
        let idf = v.idf(query[0]);
        let many = s.score(
            &v,
            &query,
            &TokenCounts::from_text("pool pool pool pool pool"),
        );
        let once = s.score(&v, &query, &TokenCounts::from_text("pool"));
        assert!(once < many);
        assert!(many < idf, "tf component must saturate below 1");
    }

    #[test]
    fn upper_bound_dominates_any_subset_document() {
        let v = corpus();
        let s = SaturatingTfIdf;
        let query = q(&v, &["internet", "pool", "spa"]);
        let ub = s.upper_bound(&v, &query);
        for text in [
            "internet pool spa",
            "internet internet internet",
            "pool spa pool spa pool spa",
            "spa",
            "",
        ] {
            let doc = TokenCounts::from_text(text);
            assert!(
                s.score(&v, &query, &doc) <= ub,
                "score({text:?}) exceeded upper bound"
            );
        }
    }

    #[test]
    fn empty_query_scores_zero() {
        let v = corpus();
        let s = SaturatingTfIdf;
        assert_eq!(s.score(&v, &[], &TokenCounts::from_text("pool")), 0.0);
        assert_eq!(s.upper_bound(&v, &[]), 0.0);
    }
}
