#![warn(missing_docs)]
//! Text / information-retrieval substrate.
//!
//! The paper models every spatial object as `(T.p, T.t)` where `T.t` is a
//! text document, and needs four text capabilities:
//!
//! 1. **Tokenization** — turning `T.t` into keywords (the paper treats
//!    "Internet" in a hotel's amenities and the query keyword "internet" as
//!    equal, so tokens are lower-cased alphanumeric runs). See [`tokenize`].
//! 2. **Boolean containment** — the distance-first query's conjunctive
//!    filter `∀w ∈ Q.t : w ∈ T.t`, and the false-positive check of
//!    `IR2TopK` line 21. See [`TokenSet`].
//! 3. **Relevance ranking** — `IRscore(T.t, Q.t)` for the general top-k
//!    query, a tf-idf family function [Sin01], plus the *upper bound* the
//!    IR²-Tree computes from a node signature (the "imaginary object …
//!    tf = 1" of Section 5.3). See [`IrScorer`] and [`SaturatingTfIdf`].
//! 4. **Combining functions** — `f(distance(T.p, Q.p), IRscore(T.t, Q.t))`,
//!    decreasing in distance and increasing in IR score. See [`RankingFn`].
//!
//! The vocabulary ([`Vocabulary`]) assigns dense integer ids to terms and
//! tracks document frequencies, which both the inverted index and the tf-idf
//! scorer consume.

mod rank;
mod score;
mod tokenize;
mod vocab;

pub use rank::{DecayRank, LinearRank, RankingFn};
pub use score::{IrScorer, SaturatingTfIdf};
pub use tokenize::{tokenize, TokenCounts, TokenSet};
pub use vocab::{TermId, VocabCorrupt, Vocabulary};
