//! Vocabulary: term ids and document frequencies.

use std::collections::HashMap;

/// Dense identifier of a term in a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Structural corruption found while decoding a serialized vocabulary:
/// where decoding stopped and which field was malformed or missing there.
///
/// The crate has no storage dependency, so this is a local error type;
/// database-level callers fold it into their corruption taxonomy (e.g.
/// `StorageError::Corrupt`) with the offset preserved in the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabCorrupt {
    /// Byte offset at which the malformed or missing field starts.
    pub offset: usize,
    /// The field being decoded when the damage was found.
    pub field: &'static str,
}

impl std::fmt::Display for VocabCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vocabulary corrupt at byte {}: {}",
            self.offset, self.field
        )
    }
}

impl std::error::Error for VocabCorrupt {}

/// A corpus vocabulary: term ↔ id mapping plus the per-term document
/// frequencies and corpus size that idf weighting needs.
///
/// Built once while scanning the object file (each object's *distinct*
/// tokens increment `df`), then shared read-only by the inverted index and
/// the tf-idf scorer.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    ids: HashMap<String, TermId>,
    names: Vec<String>,
    df: Vec<u32>,
    num_docs: u64,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one document given its *distinct* terms, interning new
    /// terms and bumping document frequencies.
    pub fn add_document<'a>(&mut self, distinct_terms: impl IntoIterator<Item = &'a str>) {
        self.num_docs += 1;
        for term in distinct_terms {
            let id = self.intern(term);
            self.df[id.0 as usize] += 1;
        }
    }

    /// Interns `term`, returning its id (existing or fresh with df = 0).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.names.len() as u32);
        self.ids.insert(term.to_owned(), id);
        self.names.push(term.to_owned());
        self.df.push(0);
        id
    }

    /// Looks up a term (must be lower-cased). `None` means the term occurs
    /// nowhere in the corpus — for a conjunctive query, an empty result.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The term string for an id.
    ///
    /// # Panics
    /// Panics if `id` is not from this vocabulary.
    pub fn name(&self, id: TermId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Document frequency of a term.
    ///
    /// # Panics
    /// Panics if `id` is not from this vocabulary.
    pub fn df(&self, id: TermId) -> u32 {
        self.df[id.0 as usize]
    }

    /// Inverse document frequency: `ln(1 + N/df)`.
    ///
    /// This is the standard smoothed idf [Sin01]; for a term with df = 0
    /// (interned but never in a document) it degenerates gracefully to the
    /// maximum weight `ln(1 + N)`.
    pub fn idf(&self, id: TermId) -> f64 {
        let df = self.df(id).max(1) as f64;
        (1.0 + self.num_docs as f64 / df).ln()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of documents registered.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Iterates `(TermId, term, df)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, u32)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TermId(i as u32), n.as_str(), self.df[i]))
    }

    /// Serializes the vocabulary (used by the database superblock so a
    /// persisted database reopens with identical term ids).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.names.len() * 12);
        out.extend_from_slice(&self.num_docs.to_le_bytes());
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for (i, name) in self.names.iter().enumerate() {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&self.df[i].to_le_bytes());
        }
        out
    }

    /// Deserializes a vocabulary written by [`Vocabulary::encode`].
    ///
    /// Any structural corruption — truncation, invalid UTF-8 in a term,
    /// trailing bytes after the last record — is reported as a
    /// [`VocabCorrupt`] naming the byte offset, so integrity checkers can
    /// say *where* the damage is instead of a bare "didn't parse".
    pub fn decode(buf: &[u8]) -> Result<Self, VocabCorrupt> {
        let mut pos = 0usize;
        let take =
            |pos: &mut usize, n: usize, field: &'static str| -> Result<&[u8], VocabCorrupt> {
                let s = buf.get(*pos..*pos + n).ok_or(VocabCorrupt {
                    offset: *pos,
                    field,
                })?;
                *pos += n;
                Ok(s)
            };
        let num_docs = u64::from_le_bytes(
            take(&mut pos, 8, "num_docs (u64)")?
                .try_into()
                .expect("8 bytes"),
        );
        let count = u32::from_le_bytes(
            take(&mut pos, 4, "term count (u32)")?
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        // A corrupt count could be huge; cap pre-allocation by what the
        // remaining bytes could possibly hold (≥ 6 bytes per term record).
        let plausible = count.min(buf.len().saturating_sub(pos) / 6);
        let mut vocab = Vocabulary {
            ids: HashMap::with_capacity(plausible),
            names: Vec::with_capacity(plausible),
            df: Vec::with_capacity(plausible),
            num_docs,
        };
        for i in 0..count {
            let len = u16::from_le_bytes(
                take(&mut pos, 2, "term length (u16)")?
                    .try_into()
                    .expect("2 bytes"),
            ) as usize;
            let start = pos;
            let name = std::str::from_utf8(take(&mut pos, len, "term bytes")?)
                .map_err(|e| VocabCorrupt {
                    offset: start + e.valid_up_to(),
                    field: "term bytes (invalid UTF-8)",
                })?
                .to_owned();
            let df = u32::from_le_bytes(
                take(&mut pos, 4, "document frequency (u32)")?
                    .try_into()
                    .expect("4 bytes"),
            );
            vocab.ids.insert(name.clone(), TermId(i as u32));
            vocab.names.push(name);
            vocab.df.push(df);
        }
        if pos != buf.len() {
            return Err(VocabCorrupt {
                offset: pos,
                field: "trailing bytes after last term record",
            });
        }
        Ok(vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.add_document(["internet", "pool", "spa"]);
        v.add_document(["pool", "pets"]);
        v.add_document(["pool"]);
        v
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let v = sample();
        assert_eq!(v.num_docs(), 3);
        assert_eq!(v.df(v.term_id("pool").unwrap()), 3);
        assert_eq!(v.df(v.term_id("internet").unwrap()), 1);
        assert_eq!(v.term_id("sauna"), None);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn rarer_terms_weigh_more() {
        let v = sample();
        let idf_pool = v.idf(v.term_id("pool").unwrap());
        let idf_internet = v.idf(v.term_id("internet").unwrap());
        assert!(idf_internet > idf_pool);
        assert!(idf_pool > 0.0);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("pool");
        let b = v.intern("pool");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.name(a), "pool");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = sample();
        let bytes = v.encode();
        let back = Vocabulary::decode(&bytes).unwrap();
        assert_eq!(back.num_docs(), v.num_docs());
        assert_eq!(back.len(), v.len());
        for (id, name, df) in v.iter() {
            assert_eq!(back.term_id(name), Some(id));
            assert_eq!(back.df(id), df);
        }
    }

    #[test]
    fn decode_rejects_truncated_input_with_offset() {
        let v = sample();
        let bytes = v.encode();
        // Cutting into the last term's df field reports that offset.
        let err = Vocabulary::decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.offset, bytes.len() - 4);
        assert_eq!(err.field, "document frequency (u32)");
        // A buffer too short for even the header names the header field.
        let err = Vocabulary::decode(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.offset, 0);
        assert_eq!(err.field, "num_docs (u64)");
    }

    #[test]
    fn decode_rejects_invalid_utf8_and_trailing_bytes() {
        let v = sample();
        let mut bytes = v.encode();
        // Corrupt the first term's first byte into a lone continuation byte.
        let first_name_at = 8 + 4 + 2;
        bytes[first_name_at] = 0xFF;
        let err = Vocabulary::decode(&bytes).unwrap_err();
        assert_eq!(err.offset, first_name_at);
        assert!(err.field.contains("UTF-8"), "got {err}");
        // Extra bytes after the final record are damage, not padding.
        let mut bytes = v.encode();
        let clean_len = bytes.len();
        bytes.push(0);
        let err = Vocabulary::decode(&bytes).unwrap_err();
        assert_eq!(err.offset, clean_len);
        assert!(err.field.contains("trailing"), "got {err}");
        assert!(err.to_string().contains(&clean_len.to_string()));
    }
}
