//! Vocabulary: term ids and document frequencies.

use std::collections::HashMap;

/// Dense identifier of a term in a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// A corpus vocabulary: term ↔ id mapping plus the per-term document
/// frequencies and corpus size that idf weighting needs.
///
/// Built once while scanning the object file (each object's *distinct*
/// tokens increment `df`), then shared read-only by the inverted index and
/// the tf-idf scorer.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    ids: HashMap<String, TermId>,
    names: Vec<String>,
    df: Vec<u32>,
    num_docs: u64,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one document given its *distinct* terms, interning new
    /// terms and bumping document frequencies.
    pub fn add_document<'a>(&mut self, distinct_terms: impl IntoIterator<Item = &'a str>) {
        self.num_docs += 1;
        for term in distinct_terms {
            let id = self.intern(term);
            self.df[id.0 as usize] += 1;
        }
    }

    /// Interns `term`, returning its id (existing or fresh with df = 0).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.names.len() as u32);
        self.ids.insert(term.to_owned(), id);
        self.names.push(term.to_owned());
        self.df.push(0);
        id
    }

    /// Looks up a term (must be lower-cased). `None` means the term occurs
    /// nowhere in the corpus — for a conjunctive query, an empty result.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The term string for an id.
    ///
    /// # Panics
    /// Panics if `id` is not from this vocabulary.
    pub fn name(&self, id: TermId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Document frequency of a term.
    ///
    /// # Panics
    /// Panics if `id` is not from this vocabulary.
    pub fn df(&self, id: TermId) -> u32 {
        self.df[id.0 as usize]
    }

    /// Inverse document frequency: `ln(1 + N/df)`.
    ///
    /// This is the standard smoothed idf [Sin01]; for a term with df = 0
    /// (interned but never in a document) it degenerates gracefully to the
    /// maximum weight `ln(1 + N)`.
    pub fn idf(&self, id: TermId) -> f64 {
        let df = self.df(id).max(1) as f64;
        (1.0 + self.num_docs as f64 / df).ln()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of documents registered.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Iterates `(TermId, term, df)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, u32)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TermId(i as u32), n.as_str(), self.df[i]))
    }

    /// Serializes the vocabulary (used by the database superblock so a
    /// persisted database reopens with identical term ids).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.names.len() * 12);
        out.extend_from_slice(&self.num_docs.to_le_bytes());
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for (i, name) in self.names.iter().enumerate() {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&self.df[i].to_le_bytes());
        }
        out
    }

    /// Deserializes a vocabulary written by [`Vocabulary::encode`].
    ///
    /// Returns `None` on any structural corruption.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let num_docs = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let mut vocab = Vocabulary {
            ids: HashMap::with_capacity(count),
            names: Vec::with_capacity(count),
            df: Vec::with_capacity(count),
            num_docs,
        };
        for i in 0..count {
            let len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
            let name = std::str::from_utf8(take(&mut pos, len)?).ok()?.to_owned();
            let df = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            vocab.ids.insert(name.clone(), TermId(i as u32));
            vocab.names.push(name);
            vocab.df.push(df);
        }
        Some(vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.add_document(["internet", "pool", "spa"]);
        v.add_document(["pool", "pets"]);
        v.add_document(["pool"]);
        v
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let v = sample();
        assert_eq!(v.num_docs(), 3);
        assert_eq!(v.df(v.term_id("pool").unwrap()), 3);
        assert_eq!(v.df(v.term_id("internet").unwrap()), 1);
        assert_eq!(v.term_id("sauna"), None);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn rarer_terms_weigh_more() {
        let v = sample();
        let idf_pool = v.idf(v.term_id("pool").unwrap());
        let idf_internet = v.idf(v.term_id("internet").unwrap());
        assert!(idf_internet > idf_pool);
        assert!(idf_pool > 0.0);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("pool");
        let b = v.intern("pool");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.name(a), "pool");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = sample();
        let bytes = v.encode();
        let back = Vocabulary::decode(&bytes).unwrap();
        assert_eq!(back.num_docs(), v.num_docs());
        assert_eq!(back.len(), v.len());
        for (id, name, df) in v.iter() {
            assert_eq!(back.term_id(name), Some(id));
            assert_eq!(back.df(id), df);
        }
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let v = sample();
        let bytes = v.encode();
        assert!(Vocabulary::decode(&bytes[..bytes.len() - 3]).is_none());
        assert!(Vocabulary::decode(&[1, 2, 3]).is_none());
    }
}
