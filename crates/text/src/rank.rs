//! Combining functions `f(distance, IRscore)` for general top-k queries.

/// A ranking function combining spatial distance and text relevance.
///
/// Section 2 defines the general query's ranking as
/// `f(distance(T.p, Q.p), IRscore(T.t, Q.t))`; Section 5.3's upper-bound
/// machinery additionally assumes `f` is *decreasing with distance and
/// increasing with IRscore*. Implementations must satisfy that monotonicity
/// (it is what makes `combine(MINDIST, ir_upper_bound)` an upper bound for
/// every object in a subtree); the property tests in this crate check it
/// for the provided implementations.
pub trait RankingFn: Send + Sync {
    /// Combined score — higher is better.
    fn combine(&self, distance: f64, ir_score: f64) -> f64;
}

/// Weighted linear combination: `ir_weight · IRscore − dist_weight · distance`.
///
/// The classic additive trade-off; `dist_weight` converts distance units
/// into relevance units.
#[derive(Debug, Clone, Copy)]
pub struct LinearRank {
    /// Weight of the IR relevance term.
    pub ir_weight: f64,
    /// Weight (per unit distance) of the spatial term.
    pub dist_weight: f64,
}

impl Default for LinearRank {
    fn default() -> Self {
        Self {
            ir_weight: 1.0,
            dist_weight: 0.01,
        }
    }
}

impl RankingFn for LinearRank {
    fn combine(&self, distance: f64, ir_score: f64) -> f64 {
        self.ir_weight * ir_score - self.dist_weight * distance
    }
}

/// Multiplicative decay: `IRscore / (1 + distance/scale)`.
///
/// Keeps scores non-negative and makes relevance count for less the farther
/// the object is — the shape most local-search ranking uses.
#[derive(Debug, Clone, Copy)]
pub struct DecayRank {
    /// Distance at which relevance is halved.
    pub scale: f64,
}

impl Default for DecayRank {
    fn default() -> Self {
        Self { scale: 10.0 }
    }
}

impl RankingFn for DecayRank {
    fn combine(&self, distance: f64, ir_score: f64) -> f64 {
        ir_score / (1.0 + distance / self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_monotone(f: &dyn RankingFn) {
        // Decreasing in distance.
        assert!(f.combine(1.0, 5.0) >= f.combine(2.0, 5.0));
        assert!(f.combine(0.0, 5.0) >= f.combine(100.0, 5.0));
        // Increasing in IR score.
        assert!(f.combine(3.0, 6.0) >= f.combine(3.0, 5.0));
        assert!(f.combine(3.0, 0.1) >= f.combine(3.0, 0.0));
    }

    #[test]
    fn linear_is_monotone() {
        check_monotone(&LinearRank::default());
    }

    #[test]
    fn decay_is_monotone() {
        check_monotone(&DecayRank::default());
    }

    #[test]
    fn decay_is_nonnegative_for_nonnegative_ir() {
        let f = DecayRank::default();
        assert!(f.combine(1e9, 3.0) >= 0.0);
        assert_eq!(f.combine(123.0, 0.0), 0.0);
    }

    #[test]
    fn linear_trades_distance_for_relevance() {
        let f = LinearRank {
            ir_weight: 1.0,
            dist_weight: 0.1,
        };
        // An object 10 units farther needs 1.0 more relevance to tie.
        let near_weak = f.combine(0.0, 1.0);
        let far_strong = f.combine(10.0, 2.0);
        assert!((near_weak - far_strong).abs() < 1e-12);
    }
}
