//! Property tests for the IR substrate: the upper-bound contract that the
//! general IR²-Tree algorithm's correctness rests on.

use ir2_text::{
    tokenize, DecayRank, IrScorer, LinearRank, RankingFn, SaturatingTfIdf, TokenCounts, TokenSet,
    Vocabulary,
};
use proptest::prelude::*;

/// Small word pool so documents overlap heavily.
fn arb_word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "internet", "pool", "spa", "pets", "golf", "sauna", "suite", "gym", "bar", "wifi",
    ])
    .prop_map(str::to_owned)
}

fn arb_doc() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_word(), 0..20)
}

fn build_vocab(docs: &[Vec<String>]) -> Vocabulary {
    let mut v = Vocabulary::new();
    for d in docs {
        let mut distinct: Vec<&str> = d.iter().map(String::as_str).collect();
        distinct.sort_unstable();
        distinct.dedup();
        v.add_document(distinct);
    }
    v
}

proptest! {
    /// For every document and every query, the scorer's upper bound over the
    /// full query-term set dominates the document's actual score. This is the
    /// invariant that lets the IR²-Tree emit results early without missing a
    /// better one deeper in the tree.
    #[test]
    fn upper_bound_dominates_scores(docs in prop::collection::vec(arb_doc(), 1..12),
                                    query in prop::collection::vec(arb_word(), 1..5)) {
        let vocab = build_vocab(&docs);
        let scorer = SaturatingTfIdf;
        let mut qids: Vec<_> = query.iter().filter_map(|w| vocab.term_id(w)).collect();
        qids.sort_unstable();
        qids.dedup();
        let ub = scorer.upper_bound(&vocab, &qids);
        for d in &docs {
            let doc = TokenCounts::from_text(&d.join(" "));
            prop_assert!(scorer.score(&vocab, &qids, &doc) <= ub + 1e-12);
        }
    }

    /// Upper bound is monotone in the matched set: matching fewer query terms
    /// can only lower the bound (needed because deeper nodes match subsets).
    #[test]
    fn upper_bound_monotone_in_matched_set(docs in prop::collection::vec(arb_doc(), 1..12),
                                           query in prop::collection::vec(arb_word(), 1..6),
                                           keep in prop::collection::vec(any::<bool>(), 6)) {
        let vocab = build_vocab(&docs);
        let scorer = SaturatingTfIdf;
        let mut qids: Vec<_> = query.iter().filter_map(|w| vocab.term_id(w)).collect();
        qids.sort_unstable();
        qids.dedup();
        let subset: Vec<_> = qids.iter().zip(keep.iter().cycle()).filter(|(_, &k)| k).map(|(&t, _)| t).collect();
        prop_assert!(scorer.upper_bound(&vocab, &subset) <= scorer.upper_bound(&vocab, &qids) + 1e-12);
    }

    /// Ranking functions are monotone: decreasing in distance, increasing in
    /// IR score — the assumption Section 5.3 makes explicit.
    #[test]
    fn ranking_fns_are_monotone(d1 in 0.0f64..1e4, d2 in 0.0f64..1e4,
                                s1 in 0.0f64..100.0, s2 in 0.0f64..100.0) {
        let (dlo, dhi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (slo, shi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        for f in [&LinearRank::default() as &dyn RankingFn, &DecayRank::default()] {
            prop_assert!(f.combine(dlo, s1) >= f.combine(dhi, s1) - 1e-9);
            prop_assert!(f.combine(d1, shi) >= f.combine(d1, slo) - 1e-9);
        }
    }

    /// Tokenization is idempotent: tokenizing the join of tokens yields the
    /// same tokens (tokens contain no separators).
    #[test]
    fn tokenize_idempotent(text in ".{0,80}") {
        let once: Vec<String> = tokenize(&text).collect();
        let twice: Vec<String> = tokenize(&once.join(" ")).collect();
        prop_assert_eq!(once, twice);
    }

    /// TokenSet::contains_all agrees with naive containment of each keyword.
    #[test]
    fn contains_all_agrees_with_naive(doc in arb_doc(), query in prop::collection::vec(arb_word(), 0..4)) {
        let text = doc.join(" ");
        let set = TokenSet::from_text(&text);
        let naive = query.iter().all(|w| doc.iter().any(|t| t == w));
        prop_assert_eq!(set.contains_all(&query), naive);
    }

    /// Vocabulary serialization round-trips.
    #[test]
    fn vocab_roundtrip(docs in prop::collection::vec(arb_doc(), 0..10)) {
        let vocab = build_vocab(&docs);
        let back = Vocabulary::decode(&vocab.encode()).unwrap();
        prop_assert_eq!(back.num_docs(), vocab.num_docs());
        prop_assert_eq!(back.len(), vocab.len());
        for (id, name, df) in vocab.iter() {
            prop_assert_eq!(back.term_id(name), Some(id));
            prop_assert_eq!(back.df(id), df);
            prop_assert!((back.idf(id) - vocab.idf(id)).abs() < 1e-12);
        }
    }
}
