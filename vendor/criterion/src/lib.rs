//! Offline mini-`criterion`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of the `criterion` API the workspace's benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `Bencher`
//! with `iter` / `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warmup,
//! then `sample_size` timed samples (auto-scaled iteration counts), and the
//! median ns/iter is printed. There is no statistical analysis, HTML
//! report, or baseline comparison — enough to compare alternatives locally
//! and to keep `cargo bench` runnable offline.

use std::time::{Duration, Instant};

/// Target wall time per benchmark (warmup + measurement).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);

/// Drives and records benchmark runs.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo test --benches` pass through
        // flags we don't implement; keep the first bare word as a name
        // filter and ignore the rest (notably `--test`, under which we run
        // each benchmark exactly once).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Upstream's CLI hook; flags are already handled in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn test_mode() -> bool {
        std::env::args().any(|a| a == "--test")
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            run_one(name, 10, &mut f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.enabled(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.criterion.enabled(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// Ends the group (upstream finalizes reports here; we have none).
    pub fn finish(self) {}
}

/// A benchmark name with a parameter, e.g. `alg/10`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// How much setup output `iter_batched` amortizes per batch. The shim runs
/// one setup per iteration regardless, so the variants only exist for API
/// compatibility.
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    /// Iterations the closure should be driven for this sample.
    iters: u64,
    /// Measured time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if Criterion::test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok (bench ran once)");
        return;
    }
    // Calibrate: one iteration to size the samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = MEASURE_BUDGET / sample_size.max(1) as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{name:<50} median {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {sample_size} samples x {iters} iters)");
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
