//! Offline mini-`proptest`.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! subset of the `proptest` API the workspace's property tests use:
//! [`Strategy`] with `prop_map`, range / tuple / array / collection /
//! sample strategies, `any::<T>()`, the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (via `Debug`) and the RNG seed, which is enough to reproduce: runs are
//!   fully deterministic per test name, so re-running the test replays the
//!   same cases.
//! * **Panic-based assertions.** `prop_assert!` panics like `assert!`
//!   instead of returning `Err(TestCaseError)`; inside `proptest!` bodies
//!   the observable behavior is the same.
//! * **Case count** defaults to 64 (upstream: 256) and honors the
//!   `PROPTEST_CASES` environment variable, keeping suite runtime bounded.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (upstream `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// Signed / float inclusive ranges fall out of the rand shim's impls; the
// macro above only requires `SampleRange` to exist for the pairing, so any
// missing combination fails at compile time rather than at run time.

// ---------------------------------------------------------------------------
// String patterns as strategies (regex-lite: the subset used in this repo).
// ---------------------------------------------------------------------------

/// Characters `.` may generate: printable ASCII plus a few non-ASCII
/// letters, so tokenizer tests see multi-byte UTF-8.
const ANY_CHAR_POOL: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \t,.!?'\"-_()[]{}:;/àéüß漢字中êñ";

#[derive(Debug)]
enum PatternAtom {
    /// One char drawn from this pool.
    Class(Vec<char>),
    /// A literal char.
    Literal(char),
}

/// A parsed string pattern: atoms with `{m,n}` / `{n}` repetition.
#[derive(Debug)]
struct Pattern {
    parts: Vec<(PatternAtom, usize, usize)>,
}

fn parse_pattern(pat: &str) -> Pattern {
    let mut chars = pat.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut pool = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            // `lo` was already pushed as a literal; extend
                            // with the rest of the range.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(u) {
                                    pool.push(ch);
                                }
                            }
                        }
                        _ => {
                            pool.push(c);
                            prev = Some(c);
                        }
                    }
                }
                assert!(!pool.is_empty(), "empty character class in {pat:?}");
                PatternAtom::Class(pool)
            }
            '.' => PatternAtom::Class(ANY_CHAR_POOL.chars().collect()),
            '\\' => PatternAtom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pat:?}")),
            ),
            lit => PatternAtom::Literal(lit),
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
                    b.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
                ),
                None => {
                    let n = spec
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "inverted repeat in {pat:?}");
        parts.push((atom, lo, hi));
    }
    Pattern { parts }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        use rand::RngExt;
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &pattern.parts {
            let n = rng.random_range(*lo..=*hi);
            for _ in 0..n {
                match atom {
                    PatternAtom::Class(pool) => out.push(pool[rng.random_range(0..pool.len())]),
                    PatternAtom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies are strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        crate::sample::Index(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// `prop::` modules.
// ---------------------------------------------------------------------------

/// Fixed-size array strategies (upstream `proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform {
        ($fname:ident, $n:expr) => {
            /// An `[T; N]` strategy drawing each element from `strategy`.
            pub fn $fname<S: Strategy>(strategy: S) -> Uniform<S, $n> {
                Uniform(strategy)
            }
        };
    }

    /// Strategy for `[T; N]` arrays.
    pub struct Uniform<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    uniform!(uniform1, 1);
    uniform!(uniform2, 2);
    uniform!(uniform3, 3);
    uniform!(uniform4, 4);
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A length specification: fixed, exclusive range, or inclusive range
    /// (upstream `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A `Vec<T>` strategy: length uniform in `len`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.len.lo..=self.len.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (upstream `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// An index into a collection whose length is only known at use time
    /// (upstream `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this abstract index onto `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    /// Strategy choosing uniformly among `options` (upstream `select`).
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select on empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// One-of combination support for [`prop_oneof!`].
pub struct OneOf<T> {
    /// The competing strategies.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::RngExt;
        self.options[rng.random_range(0..self.options.len())].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Runner configuration.
// ---------------------------------------------------------------------------

/// Number of cases to run per property (upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Drives the cases of one property test. Used by the [`proptest!`]
/// expansion; not part of the public upstream API.
#[doc(hidden)]
pub fn run_cases<G, R>(test_name: &str, config: &ProptestConfig, strategy: &G, body: R)
where
    G: Strategy,
    G::Value: std::fmt::Debug,
    R: Fn(G::Value),
{
    // Deterministic per test name: failures replay on re-run.
    let base = fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        let mut rng =
            TestRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(payload) = result {
            eprintln!(
                "proptest case {case}/{} of `{test_name}` failed\n  inputs: {shown}\n  (deterministic; re-running the test replays this case)",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Defines property tests (the subset of upstream `proptest!` used here).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_cases(stringify!($name), &__config, &__strategy, |__value| {
                let ($($pat,)+) = __value;
                $body
            });
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Combines heterogeneous strategies over one value type by uniform choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// The usual glob import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };

    /// The `prop::` module alias upstream exposes in its prelude.
    pub mod prop {
        pub use crate::{array, collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let cfg = ProptestConfig::with_cases(32);
        let strat = (
            prop::array::uniform2(-5.0f64..5.0),
            prop::collection::vec(0usize..10, 1..4),
            prop::sample::select(vec!["a", "b"]),
        );
        crate::run_cases(
            "strategies_generate_in_bounds",
            &cfg,
            &(strat,),
            |((arr, v, s),)| {
                assert!(arr.iter().all(|x| (-5.0..5.0).contains(x)));
                assert!((1..4).contains(&v.len()) && v.iter().all(|&x| x < 10));
                assert!(s == "a" || s == "b");
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_patterns((a, b) in (0u64..10, 10u64..20), idx in any::<prop::sample::Index>()) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!(idx.index(7) < 7);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![0u64..1, 5u64..6]) {
            prop_assert!(x == 0 || x == 5);
        }
    }

    #[test]
    fn index_is_uniformish() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let i = crate::Arbitrary::arbitrary(&mut rng);
            let i: crate::sample::Index = i;
            counts[i.index(4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }
}
