//! Offline shim for the subset of `rand` this workspace uses.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! trait names and the one concrete generator (`rngs::StdRng`) the
//! workspace depends on. The generator is xoshiro256** seeded through
//! SplitMix64 — high-quality, deterministic, and stable across platforms,
//! which is all the dataset generators need (they are seeded explicitly
//! everywhere; statistical identity with upstream `StdRng` streams is not
//! required and not promised).

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from an RNG (the shim's stand-in
/// for `rand`'s `StandardUniform` distribution).
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u8 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges that can be sampled uniformly (the shim's stand-in for
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire-style
/// widening multiply; the tiny modulo bias of a plain `% n` is avoided).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rare rejection: redraw to stay exactly uniform.
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::random(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` uniformly (e.g. `rng.random::<f64>()`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from a range (e.g. `rng.random_range(0..10)`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via SplitMix64. Deterministic and portable;
    /// stands in for `rand::rngs::StdRng` in this offline build.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.random_range(3usize..=7);
            assert!((3..=7).contains(&y));
            let f = rng.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
        // Inclusive integer ranges hit both endpoints eventually.
        let mut saw = [false; 5];
        for _ in 0..1000 {
            saw[rng.random_range(0usize..=4)] = true;
        }
        assert!(saw.iter().all(|&b| b));
    }

    #[test]
    fn single_element_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(5usize..=5), 5);
    }
}
