//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The container that builds this repository has no access to crates.io, so
//! the real `parking_lot` cannot be downloaded. This crate re-implements the
//! pieces the workspace depends on — `Mutex` and `RwLock` with
//! non-poisoning, guard-returning `lock()` / `read()` / `write()` — on top
//! of `std::sync`. Poisoning is absorbed by taking the inner value from a
//! poisoned guard: a panic while holding a lock in this codebase only ever
//! happens in tests that are already failing.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns an error: poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdRwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdRwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
