//! Online yellow pages — the paper's motivating application.
//!
//! "Online yellow pages allow users to specify an address and a set of
//! keywords. In return, the user obtains a list of businesses whose
//! description contains these keywords, ordered by their distance from the
//! specified address." This example builds a city-scale synthetic business
//! directory and serves paginated keyword searches from it, using the
//! incremental distance-first iterator: page 2 continues where page 1
//! stopped, reading only the additional tree nodes it needs.
//!
//! Run with: `cargo run --release --example yellow_pages`

use ir2_datagen::DatasetSpec;
use ir2tree::irtree::DistanceFirstIter;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

const PAGE_SIZE: usize = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20k-business directory with Restaurants-like text statistics.
    let spec = DatasetSpec::restaurants().scaled(20_000.0 / 456_288.0);
    println!("Generating {} businesses…", spec.num_objects);
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        spec.generate(),
        DbConfig::restaurants(),
    )?;
    println!(
        "Built directory: {} businesses, {} distinct words, {:.1} MB of listings.\n",
        db.build_stats().objects,
        db.build_stats().unique_words,
        db.build_stats().object_file_bytes as f64 / 1_048_576.0
    );

    // A user at a downtown address searches for two fairly common terms
    // (frequency ranks 12 and 40 of the synthetic vocabulary).
    let keywords = [spec.keyword_of_rank(12), spec.keyword_of_rank(40)];
    let address = [40.7, -74.0];
    println!("Search near {address:?} for businesses mentioning {keywords:?}:\n");

    // Page through results incrementally: one iterator, resumed per page.
    let query = DistanceFirstQuery::new(address, &keywords, usize::MAX);
    let mut results = DistanceFirstIter::new(db.ir2_tree(), db.object_store(), query);
    for page in 1..=3 {
        println!("--- page {page} ---");
        let mut shown = 0;
        for hit in results.by_ref().take(PAGE_SIZE) {
            let (business, dist) = hit?;
            let preview: String = business.text.chars().take(40).collect();
            println!("  #{:<6} {:>7.2} away   {preview}…", business.id, dist);
            shown += 1;
        }
        if shown < PAGE_SIZE {
            println!("  (no more matches)");
            break;
        }
    }
    let counters = results.counters();
    println!(
        "\nServed 3 pages reading {} tree nodes; signatures pruned {} entries, \
         {} candidate(s) were false positives.",
        counters.nodes_read, counters.pruned_by_signature, counters.false_positives
    );

    // Contrast: what the same first page costs each algorithm.
    println!("\nCost of the first page by algorithm:");
    let first_page = DistanceFirstQuery::new(address, &keywords, PAGE_SIZE);
    for alg in Algorithm::ALL {
        let rep = db.distance_first(alg, &first_page)?;
        println!(
            "  {:<10} {:>6} random + {:>6} sequential block accesses, {:>5} object loads, {:>8.1} ms simulated",
            alg.label(),
            rep.io.random(),
            rep.io.sequential(),
            rep.object_loads,
            rep.simulated.as_secs_f64() * 1e3,
        );
    }
    Ok(())
}
