//! Quickstart: the paper's running example, end to end.
//!
//! Builds a spatial keyword database over the eight hotels of the paper's
//! Figure 1, then answers the paper's running query — "top-2 hotels from
//! point [30.5, 100.0] containing the keywords internet and pool" — with
//! all four algorithms (R-Tree baseline, IIO baseline, IR²-Tree,
//! MIR²-Tree), printing the results and the per-algorithm disk I/O.
//!
//! Run with: `cargo run --example quickstart`

use ir2_datagen::figure1_hotels;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small fanout so even 8 hotels form a real multi-level tree, like the
    // paper's Figure 2 / Figure 4 illustrations.
    let config = DbConfig {
        capacity: Some(4),
        sig_bytes: 16,
        ..DbConfig::default()
    };
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), figure1_hotels(), config)?;

    println!(
        "Indexed {} hotels from the paper's Figure 1.\n",
        db.build_stats().objects
    );

    // The paper's running query (Examples 2 and 3).
    let query = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
    println!(
        "Query: top-{} objects nearest to [30.5, 100.0] containing {:?}\n",
        query.k, query.keywords
    );

    println!(
        "{:<10} {:<28} {:>7} {:>7} {:>9} {:>12}",
        "algorithm", "results", "random", "seq", "obj loads", "sim. time"
    );
    for alg in Algorithm::ALL {
        let report = db.distance_first(alg, &query)?;
        let results: Vec<String> = report
            .results
            .iter()
            .map(|(obj, dist)| format!("H{} ({dist:.1})", obj.id))
            .collect();
        println!(
            "{:<10} {:<28} {:>7} {:>7} {:>9} {:>9.2} ms",
            alg.label(),
            results.join(", "),
            report.io.random(),
            report.io.sequential(),
            report.object_loads,
            report.simulated.as_secs_f64() * 1e3,
        );
    }

    println!("\nEvery algorithm returns H7 then H2 — the paper's Example 2/3 answer.");
    println!("The IR²-Tree prunes subtrees whose signature lacks the query keywords,");
    println!("which is why it loads fewer objects than the R-Tree baseline.");
    Ok(())
}
