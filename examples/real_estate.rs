//! Real-estate search — the paper's second motivating application, using
//! the *general* (ranked) top-k spatial keyword query of Section 5.3.
//!
//! "Real estate web sites allow users to search for properties with
//! specific keywords in their description and rank them according to their
//! distance from a specified location." Unlike the distance-first query,
//! keywords here are preferences, not filters: a listing matching two of
//! three keywords slightly farther away can beat a one-keyword match next
//! door. Results are ranked by `f(distance, IRscore)` and the example
//! contrasts two ranking functions.
//!
//! Run with: `cargo run --release --example real_estate`

use ir2tree::irtree::GeneralQuery;
use ir2tree::model::SpatialObject;
use ir2tree::text::{DecayRank, LinearRank, RankingFn, SaturatingTfIdf};
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn listings() -> Vec<SpatialObject<2>> {
    let features = [
        "garden garage renovated kitchen",
        "pool garden view balcony",
        "downtown loft exposed brick",
        "garage workshop basement",
        "renovated pool sauna garden",
        "cottage fireplace garden quiet",
        "penthouse view terrace pool",
        "bungalow garage solar panels",
        "studio compact renovated",
        "villa pool tennis garden sauna",
    ];
    (0..400u64)
        .map(|i| {
            let x = (i % 20) as f64 * 0.7;
            let y = (i / 20) as f64 * 0.7;
            SpatialObject::new(i, [x, y], features[(i as usize * 7) % features.len()])
        })
        .collect()
}

fn show(
    db: &SpatialKeywordDb<ir2tree::storage::MemDevice>,
    name: &str,
    rank: &dyn RankingFn,
    query: &GeneralQuery<2>,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = db.general_ranked(Algorithm::Ir2, query, &SaturatingTfIdf, rank)?;
    println!("Ranking with {name}:");
    for r in &report.results {
        println!(
            "  listing #{:<4} score {:>6.3}  (distance {:>5.2}, relevance {:>5.2})  {}",
            r.object.id, r.score, r.distance, r.ir_score, r.object.text
        );
    }
    println!(
        "  [{} random + {} sequential block accesses, {} listings inspected]\n",
        report.io.random(),
        report.io.sequential(),
        report.object_loads
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        listings(),
        DbConfig {
            capacity: Some(16),
            sig_bytes: 8,
            ..DbConfig::default()
        },
    )?;
    println!("Indexed {} property listings.\n", db.build_stats().objects);

    // A buyer at (5.0, 5.0) wants a garden, a pool, and a garage — rarely
    // all in one listing.
    let query = GeneralQuery::new([5.0, 5.0], &["garden", "pool", "garage"], 5);
    println!(
        "Buyer at [5.0, 5.0], preferences {:?}, top-{}:\n",
        query.keywords, query.k
    );

    // A linear trade-off: one relevance point is worth 10 distance units.
    show(
        &db,
        "LinearRank (relevance − 0.1·distance)",
        &LinearRank {
            ir_weight: 1.0,
            dist_weight: 0.1,
        },
        &query,
    )?;

    // A decay ranking: relevance halves every 3 distance units.
    show(
        &db,
        "DecayRank (relevance / (1 + distance/3))",
        &DecayRank { scale: 3.0 },
        &query,
    )?;

    println!("Note how DecayRank favors nearby partial matches while LinearRank");
    println!("reaches farther for listings matching more preferences.");
    Ok(())
}
