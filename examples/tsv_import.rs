//! Importing a real dataset: tab-separated files, the paper's data format.
//!
//! The paper's datasets "are plain text files (tab delimited) where each
//! spatial object occupies a row". This example writes such a file,
//! imports it into a database, and answers queries — the workflow for
//! anyone with their own points-of-interest TSV.
//!
//! Run with: `cargo run --example tsv_import`

use std::io::BufReader;

use ir2tree::model::{tsv, DistanceFirstQuery};
use ir2tree::storage::Result;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn main() -> Result<()> {
    // 1. A tab-delimited dataset, exactly as the paper stores its data:
    //    id \t latitude \t longitude \t description
    let tsv_data = "\
# Miami-area points of interest (id, lat, lon, description)
1\t25.7617\t-80.1918\tCuban cafe cortadito pastelitos outdoor seating
2\t25.7907\t-80.1300\tbeachfront seafood raw bar happy hour
3\t25.7743\t-80.1937\tmuseum modern art sculpture garden cafe
4\t25.6866\t-80.3120\tfarmers market organic produce food trucks
5\t25.8103\t-80.1751\tcraft brewery tap room live music
6\t25.7489\t-80.2086\tbookstore espresso bar poetry readings
7\t25.7781\t-80.1893\tramen late night sake cocktails
8\t25.7320\t-80.2430\tyoga studio juice bar smoothies
";
    let path = std::env::temp_dir().join(format!("ir2tree-poi-{}.tsv", std::process::id()));
    std::fs::write(&path, tsv_data)?;
    println!("Wrote sample TSV to {}", path.display());

    // 2. Import: each row becomes a SpatialObject; malformed rows would
    //    surface as errors here.
    let file = std::fs::File::open(&path)?;
    let objects = tsv::read_tsv::<2, _>(BufReader::new(file)).collect::<Result<Vec<_>>>()?;
    println!("Imported {} objects.", objects.len());

    // 3. Build all four index structures and query.
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        objects.clone(),
        DbConfig {
            capacity: Some(4),
            sig_bytes: 16,
            ..DbConfig::default()
        },
    )?;

    // "Nearest cafe with a garden to downtown Miami"
    let q = DistanceFirstQuery::new([25.7743, -80.1937], &["cafe"], 3);
    println!("\nTop-3 'cafe' near downtown:");
    for (obj, dist) in &db.distance_first(Algorithm::Ir2, &q)?.results {
        println!("  #{} at {:.4} deg — {}", obj.id, dist, obj.text);
    }

    // 4. Round-trip: export the database contents back to TSV.
    let mut out = Vec::new();
    tsv::write_tsv(&mut out, &objects)?;
    let reparsed = tsv::read_tsv::<2, _>(BufReader::new(&out[..])).collect::<Result<Vec<_>>>()?;
    assert_eq!(reparsed, objects);
    println!(
        "\nExport/import round-trip verified ({} bytes of TSV).",
        out.len()
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
