//! Durability: build a database on real files, reopen it, query it.
//!
//! Every structure in the workspace is genuinely disk-resident — the same
//! 4096-byte block layout the experiments simulate also round-trips
//! through the filesystem. This example builds a database under a
//! temporary directory, drops it, reopens it from the files alone, and
//! answers queries from the reopened instance.
//!
//! Run with: `cargo run --example persistence`

use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("ir2tree-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = DatasetSpec::restaurants().scaled(3_000.0 / 456_288.0);
    let keywords = [spec.keyword_of_rank(5), spec.keyword_of_rank(25)];
    let query = DistanceFirstQuery::new([10.0, 10.0], &keywords, 5);

    // Phase 1: build on disk, query, drop.
    let answer_before = {
        println!(
            "Building {} objects under {}…",
            spec.num_objects,
            dir.display()
        );
        let devices = DeviceSet::create_in_dir(&dir)?;
        let db = SpatialKeywordDb::build(devices, spec.generate(), DbConfig::restaurants())?;
        let report = db.distance_first(Algorithm::Ir2, &query)?;
        println!(
            "Fresh database answered top-{} for {:?}: {:?}",
            query.k,
            keywords,
            report.results.iter().map(|(o, _)| o.id).collect::<Vec<_>>()
        );
        report
    }; // db dropped here; only the files remain

    // Phase 2: reopen from files alone.
    println!("\nReopening from disk…");
    let db = SpatialKeywordDb::open(DeviceSet::open_dir(&dir)?)?;
    println!(
        "Reopened: {} objects, vocabulary of {} words, catalog intact.",
        db.build_stats().objects,
        db.build_stats().unique_words
    );

    for alg in Algorithm::ALL {
        let report = db.distance_first(alg, &query)?;
        let ids: Vec<u64> = report.results.iter().map(|(o, _)| o.id).collect();
        println!("  {:<10} -> {ids:?}", alg.label());
        assert_eq!(
            ids,
            answer_before
                .results
                .iter()
                .map(|(o, _)| o.id)
                .collect::<Vec<_>>(),
            "reopened database must answer identically"
        );
    }

    let on_disk: u64 = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "\nAll algorithms agree after reopen. {} bytes across 6 device files.",
        on_disk
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
